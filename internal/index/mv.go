package index

import (
	"fmt"
	"strings"

	"cadb/internal/catalog"
	"cadb/internal/storage"
	"cadb/internal/workload"
)

// MaterializeMV executes the view definition over the database: hash-join the
// fact table with each dimension (key/foreign-key joins, so at most one match
// per fact row), apply the WHERE clause, then group and aggregate. The result
// always includes a trailing hidden "__count" column when grouped.
//
// The returned schema qualifies column names as table_col to keep them unique
// across joined tables.
func MaterializeMV(db *catalog.Database, mv *MVDef) (*storage.Schema, []storage.Row, error) {
	return MaterializeMVOver(db, mv, nil, nil)
}

// MaterializeMVOver is MaterializeMV with an optional fact-table row
// override; the sampling subsystem passes a fact sample here to build MV
// samples over join synopses (Appendix B).
func MaterializeMVOver(db *catalog.Database, mv *MVDef, factSchema *storage.Schema, factRows []storage.Row) (*storage.Schema, []storage.Row, error) {
	return MaterializeMVWith(db, mv, factSchema, factRows, nil)
}

// MaterializeMVWith additionally routes dimension-table access through fetch
// (see JoinRowsWith) — the segment-backed executor materializes aggregates
// with every table read served from the page store.
func MaterializeMVWith(db *catalog.Database, mv *MVDef, factSchema *storage.Schema, factRows []storage.Row, fetch TableFetch) (*storage.Schema, []storage.Row, error) {
	schema, rows, err := JoinRowsWith(db, mv.Fact, factSchema, factRows, mv.Joins, fetch)
	if err != nil {
		return nil, nil, err
	}
	rows, err = FilterRows(schema, rows, mv.Where)
	if err != nil {
		return nil, nil, err
	}
	if len(mv.GroupBy) == 0 && len(mv.Aggs) == 0 {
		// A join-projection view: project the referenced columns.
		return schema, rows, nil
	}
	return groupRows(schema, rows, mv.GroupBy, mv.Aggs)
}

// QualifiedCol renders the canonical joined-row column name for a reference.
func QualifiedCol(c workload.ColRef) string {
	if c.Table == "" {
		return strings.ToLower(c.Col)
	}
	return strings.ToLower(c.Table + "_" + c.Col)
}

// JoinRows joins the fact table with each joined dimension table, producing a
// wide row set whose schema has columns named table_col. Fact rows with no
// dimension match (possible when sampling the fact table) are dropped, which
// matches inner-join semantics.
func JoinRows(db *catalog.Database, fact string, joins []workload.Join) (*storage.Schema, []storage.Row, error) {
	return JoinRowsFrom(db, fact, nil, nil, joins)
}

// TableFetch overrides where a table's rows come from during joins; nil
// falls back to the catalog's in-memory rows. The segment-backed executor
// supplies a fetch that decodes pages (and counts the reads).
type TableFetch func(table string) (*storage.Schema, []storage.Row, error)

// JoinRowsFrom is JoinRows but with an optional row override for the fact
// table (factSchema/factRows non-nil) — used by the sampling subsystem to
// join a fact-table sample against the full dimension tables (join synopses,
// Appendix B.2).
func JoinRowsFrom(db *catalog.Database, fact string, factSchema *storage.Schema, factRows []storage.Row, joins []workload.Join) (*storage.Schema, []storage.Row, error) {
	return JoinRowsWith(db, fact, factSchema, factRows, joins, nil)
}

// JoinRowsWith is JoinRowsFrom with dimension access routed through fetch.
func JoinRowsWith(db *catalog.Database, fact string, factSchema *storage.Schema, factRows []storage.Row, joins []workload.Join, fetch TableFetch) (*storage.Schema, []storage.Row, error) {
	ft := db.Table(fact)
	if ft == nil {
		return nil, nil, fmt.Errorf("index: unknown fact table %q", fact)
	}
	if factSchema == nil {
		factSchema, factRows = ft.Schema, ft.Rows
	}
	jn, err := NewJoiner(db, fact, factSchema, joins, fetch)
	if err != nil {
		return nil, nil, err
	}
	out := make([]storage.Row, 0, len(factRows))
	for _, r := range factRows {
		if wide, ok := jn.JoinRow(r); ok {
			out = append(out, wide)
		}
	}
	return jn.Schema(), out, nil
}

// Joiner is the streaming form of JoinRowsWith: the dimension hash tables
// are built once up front, then fact rows widen one at a time. Both the
// plain-row oracle and the segment-backed executor run their rows through
// this same probe code, so join behavior (and the resulting float-sum
// order downstream) cannot diverge between them.
type Joiner struct {
	schema *storage.Schema
	steps  []joinStep
}

type joinStep struct {
	hash     map[storage.ValueKey]storage.Row
	probeIdx int
}

// NewJoiner resolves the join chain against the database, fetching each
// dimension (through fetch when given) and hashing it on its key. The fact
// schema is the shape of the rows that will be fed to JoinRow — possibly a
// pruned projection of the table when the access path pushes the needed
// column set down.
func NewJoiner(db *catalog.Database, fact string, factSchema *storage.Schema, joins []workload.Join, fetch TableFetch) (*Joiner, error) {
	// Start with the fact table, columns renamed to fact_col.
	curCols := qualifyColumns(fact, factSchema.Columns)
	steps := make([]joinStep, 0, len(joins))

	for _, j := range joins {
		dimName, dimCol, factCol := j.RightTable, j.RightCol, j.LeftCol
		if !strings.EqualFold(j.LeftTable, fact) {
			// Allow the join to be written either direction.
			if strings.EqualFold(j.RightTable, fact) {
				dimName, dimCol, factCol = j.LeftTable, j.LeftCol, j.RightCol
			} else {
				// Snowflake joins hang off a previously joined dimension:
				// treat the already-joined side as the "fact" side.
				dimName, dimCol, factCol = j.RightTable, j.RightCol, j.LeftTable+"_"+j.LeftCol
			}
		}
		dim := db.Table(dimName)
		if dim == nil {
			return nil, fmt.Errorf("index: unknown dimension table %q", dimName)
		}
		dimSchema, dimRows := dim.Schema, dim.Rows
		if fetch != nil {
			var err error
			dimSchema, dimRows, err = fetch(dimName)
			if err != nil {
				return nil, err
			}
		}
		// Hash the dimension on its key.
		dimKey := dimSchema.ColIndex(dimCol)
		if dimKey < 0 {
			return nil, fmt.Errorf("index: %s has no column %q", dimName, dimCol)
		}
		hash := make(map[storage.ValueKey]storage.Row, len(dimRows))
		for _, r := range dimRows {
			hash[r[dimKey].Key()] = r
		}
		// Probe side column index in the current wide row.
		probeIdx := indexOfQualified(curCols, fact, factCol)
		if probeIdx < 0 {
			return nil, fmt.Errorf("index: join column %q not found in joined row", factCol)
		}
		steps = append(steps, joinStep{hash: hash, probeIdx: probeIdx})
		curCols = append(curCols, qualifyColumns(dimName, dimSchema.Columns)...)
	}
	return &Joiner{schema: storage.NewSchema(curCols...), steps: steps}, nil
}

// Schema returns the wide table_col-named schema JoinRow produces.
func (jn *Joiner) Schema() *storage.Schema { return jn.schema }

// JoinRow widens one fact row through every join step. ok=false means the
// row found no dimension match and is dropped (inner-join semantics).
func (jn *Joiner) JoinRow(r storage.Row) (wide storage.Row, ok bool) {
	wide = r
	for _, st := range jn.steps {
		m, found := st.hash[wide[st.probeIdx].Key()]
		if !found {
			return nil, false
		}
		nw := make(storage.Row, 0, len(wide)+len(m))
		nw = append(nw, wide...)
		nw = append(nw, m...)
		wide = nw
	}
	return wide, true
}

func qualifyColumns(table string, cols []storage.Column) []storage.Column {
	out := make([]storage.Column, len(cols))
	for i, c := range cols {
		c.Name = strings.ToLower(table + "_" + c.Name)
		out[i] = c
	}
	return out
}

// indexOfQualified finds a column that is either already qualified
// (tbl_col form) or belongs to the named table.
func indexOfQualified(cols []storage.Column, table, col string) int {
	want1 := strings.ToLower(table + "_" + col)
	want2 := strings.ToLower(col)
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if lc == want1 || lc == want2 {
			return i
		}
	}
	return -1
}

// FilterRows applies the ANDed predicates; predicate columns may be written
// unqualified (col) or qualified (table.col), both resolved against the wide
// schema's table_col naming.
func FilterRows(s *storage.Schema, rows []storage.Row, preds []workload.Predicate) ([]storage.Row, error) {
	f, err := NewRowFilter(s, preds)
	if err != nil {
		return nil, err
	}
	if f.Empty() {
		return rows, nil
	}
	out := make([]storage.Row, 0, len(rows))
	for _, r := range rows {
		if f.Keep(r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// RowFilter is the streaming form of FilterRows: predicate columns resolve
// against the schema once, then rows are tested one at a time.
type RowFilter struct {
	bounds []predBound
}

type predBound struct {
	idx int
	p   workload.Predicate
}

// NewRowFilter resolves every predicate column against the schema, failing
// on unknown columns exactly as FilterRows does.
func NewRowFilter(s *storage.Schema, preds []workload.Predicate) (*RowFilter, error) {
	f := &RowFilter{bounds: make([]predBound, 0, len(preds))}
	for _, p := range preds {
		idx := resolveCol(s, p.Table, p.Col)
		if idx < 0 {
			return nil, fmt.Errorf("index: predicate column %q not found", p.Col)
		}
		f.bounds = append(f.bounds, predBound{idx: idx, p: p})
	}
	return f, nil
}

// Empty reports whether the filter has no predicates (every row passes).
func (f *RowFilter) Empty() bool { return len(f.bounds) == 0 }

// Keep reports whether the row satisfies every predicate (NULLs never do).
func (f *RowFilter) Keep(r storage.Row) bool {
	for _, b := range f.bounds {
		v := r[b.idx]
		if v.Null || !cmpMatches(b.p, v) {
			return false
		}
	}
	return true
}

func cmpMatches(p workload.Predicate, v storage.Value) bool {
	lo := p.Lo.CoerceTo(v.Kind)
	switch p.Op {
	case workload.OpEq:
		return v.Compare(lo) == 0
	case workload.OpNe:
		return v.Compare(lo) != 0
	case workload.OpLt:
		return v.Compare(lo) < 0
	case workload.OpLe:
		return v.Compare(lo) <= 0
	case workload.OpGt:
		return v.Compare(lo) > 0
	case workload.OpGe:
		return v.Compare(lo) >= 0
	case workload.OpBetween:
		return v.Compare(lo) >= 0 && v.Compare(p.Hi.CoerceTo(v.Kind)) <= 0
	}
	return false
}

// resolveCol finds a column in a (possibly qualified) wide schema.
func resolveCol(s *storage.Schema, table, col string) int {
	if table != "" {
		if i := s.ColIndex(table + "_" + col); i >= 0 {
			return i
		}
	}
	if i := s.ColIndex(col); i >= 0 {
		return i
	}
	// Unqualified name that exists under exactly one table qualifier.
	suffix := "_" + strings.ToLower(col)
	found := -1
	for i, c := range s.Columns {
		if strings.HasSuffix(strings.ToLower(c.Name), suffix) {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// groupRows groups by the given columns and computes the aggregates plus the
// hidden __count column.
func groupRows(s *storage.Schema, rows []storage.Row, groupBy []workload.ColRef, aggs []workload.Aggregate) (*storage.Schema, []storage.Row, error) {
	ga, err := NewGroupAcc(s, groupBy, aggs)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range rows {
		ga.Add(r)
	}
	schema, out := ga.Finish()
	return schema, out, nil
}

// GroupAcc is the streaming form of groupRows: a grouping/aggregation
// accumulator fed one wide row at a time. Because the oracle and the
// segment-backed executor accumulate through this same code, feeding rows
// in the same order yields bit-identical float sums — the property the
// byte-identity differential tests pin down. Groups are emitted in first-
// appearance order.
type GroupAcc struct {
	s       *storage.Schema
	groupBy []workload.ColRef
	aggs    []workload.Aggregate
	gIdx    []int
	aIdx    []int
	groups  map[string]*groupState
	order   []*groupState
	kb      []byte
}

type groupState struct {
	key   storage.Row
	sums  []float64
	mins  []storage.Value
	maxs  []storage.Value
	nvals []int64
	count int64
}

// NewGroupAcc resolves the group-by and aggregate columns against the wide
// schema.
func NewGroupAcc(s *storage.Schema, groupBy []workload.ColRef, aggs []workload.Aggregate) (*GroupAcc, error) {
	ga := &GroupAcc{
		s:       s,
		groupBy: groupBy,
		aggs:    aggs,
		gIdx:    make([]int, len(groupBy)),
		aIdx:    make([]int, len(aggs)),
		groups:  make(map[string]*groupState, 1024),
		order:   make([]*groupState, 0, 1024),
	}
	for i, g := range groupBy {
		ga.gIdx[i] = resolveCol(s, g.Table, g.Col)
		if ga.gIdx[i] < 0 {
			return nil, fmt.Errorf("index: group-by column %q not found", g.String())
		}
	}
	for i, a := range aggs {
		if a.Col.Col == "" { // COUNT(*)
			ga.aIdx[i] = -1
			continue
		}
		ga.aIdx[i] = resolveCol(s, a.Col.Table, a.Col.Col)
		if ga.aIdx[i] < 0 {
			return nil, fmt.Errorf("index: aggregate column %q not found", a.Col.String())
		}
	}
	return ga, nil
}

// Add folds one row into its group.
func (ga *GroupAcc) Add(r storage.Row) {
	ga.kb = ga.kb[:0]
	for _, gi := range ga.gIdx {
		ga.kb = appendGroupKey(ga.kb, r[gi])
	}
	a, ok := ga.groups[string(ga.kb)]
	if !ok {
		a = &groupState{
			key:   make(storage.Row, len(ga.gIdx)),
			sums:  make([]float64, len(ga.aggs)),
			mins:  make([]storage.Value, len(ga.aggs)),
			maxs:  make([]storage.Value, len(ga.aggs)),
			nvals: make([]int64, len(ga.aggs)),
		}
		for i, gi := range ga.gIdx {
			a.key[i] = r[gi]
		}
		ga.groups[string(ga.kb)] = a
		ga.order = append(ga.order, a)
	}
	a.count++
	for i := range ga.aggs {
		if ga.aIdx[i] < 0 {
			continue
		}
		v := r[ga.aIdx[i]]
		if v.Null {
			continue
		}
		f := numeric(v)
		a.sums[i] += f
		if a.nvals[i] == 0 || v.Compare(a.mins[i]) < 0 {
			a.mins[i] = v
		}
		if a.nvals[i] == 0 || v.Compare(a.maxs[i]) > 0 {
			a.maxs[i] = v
		}
		a.nvals[i]++
	}
}

// Finish materializes the grouped output: group-by columns (renamed to
// their canonical qualified form), aggregate columns, and the hidden
// __count column.
func (ga *GroupAcc) Finish() (*storage.Schema, []storage.Row) {
	var cols []storage.Column
	for i, gi := range ga.gIdx {
		c := ga.s.Columns[gi]
		c.Name = QualifiedCol(ga.groupBy[i])
		cols = append(cols, c)
	}
	for i, a := range ga.aggs {
		name := fmt.Sprintf("%s_%s", strings.ToLower(a.Func.String()), QualifiedCol(a.Col))
		if a.Col.Col == "" {
			name = "count_star"
		}
		kind := storage.KindFloat
		if (a.Func == workload.AggMin || a.Func == workload.AggMax) && ga.aIdx[i] >= 0 {
			kind = ga.s.Columns[ga.aIdx[i]].Kind
		}
		if a.Func == workload.AggCount {
			kind = storage.KindInt
		}
		cols = append(cols, storage.Column{Name: uniqueName(cols, name), Kind: kind})
	}
	cols = append(cols, storage.Column{Name: "__count", Kind: storage.KindInt})
	outSchema := storage.NewSchema(cols...)

	out := make([]storage.Row, 0, len(ga.order))
	for _, a := range ga.order {
		row := make(storage.Row, 0, len(cols))
		row = append(row, a.key...)
		for i, ag := range ga.aggs {
			switch ag.Func {
			case workload.AggSum:
				row = append(row, storage.FloatVal(a.sums[i]))
			case workload.AggAvg:
				if a.nvals[i] == 0 {
					row = append(row, storage.NullValue(storage.KindFloat))
				} else {
					row = append(row, storage.FloatVal(a.sums[i]/float64(a.nvals[i])))
				}
			case workload.AggCount:
				n := a.count
				if ga.aIdx[i] >= 0 {
					n = a.nvals[i]
				}
				row = append(row, storage.IntVal(n))
			case workload.AggMin:
				row = append(row, orNull(a.mins[i], a.nvals[i]))
			case workload.AggMax:
				row = append(row, orNull(a.maxs[i], a.nvals[i]))
			}
		}
		row = append(row, storage.IntVal(a.count))
		out = append(out, row)
	}
	return outSchema, out
}

func orNull(v storage.Value, n int64) storage.Value {
	if n == 0 {
		return storage.NullValue(v.Kind)
	}
	return v
}

func uniqueName(cols []storage.Column, name string) string {
	exists := func(n string) bool {
		for _, c := range cols {
			if strings.EqualFold(c.Name, n) {
				return true
			}
		}
		return false
	}
	if !exists(name) {
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if !exists(cand) {
			return cand
		}
	}
}

func numeric(v storage.Value) float64 {
	switch v.Kind {
	case storage.KindFloat:
		return v.Float
	default:
		return float64(v.Int)
	}
}

func appendGroupKey(dst []byte, v storage.Value) []byte {
	if v.Null {
		return append(dst, 0xFF)
	}
	switch v.Kind {
	case storage.KindString:
		dst = append(dst, 1)
		dst = append(dst, v.Str...)
		return append(dst, 0)
	case storage.KindFloat:
		dst = append(dst, 2)
		u := uint64(int64(v.Float * 1e6))
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(u>>uint(s)))
		}
		return dst
	default:
		dst = append(dst, 3)
		u := uint64(v.Int)
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(u>>uint(s)))
		}
		return dst
	}
}
