package index

import (
	"path/filepath"
	"testing"

	"cadb/internal/bufferpool"
	"cadb/internal/compress"
	"cadb/internal/datagen"
	"cadb/internal/storage"
)

// drainBatches consumes a batch source to exhaustion, returning the
// concatenated rows and RIDs.
func drainBatches(t *testing.T, src BatchSource) ([]storage.Row, []int64) {
	t.Helper()
	var rows []storage.Row
	var rids []int64
	for {
		b, err := src.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return rows, rids
		}
		rows = append(rows, b.Rows...)
		rids = append(rids, b.RIDs...)
	}
}

// TestParallelScanMatchesSerial runs the same pushed-down scan serially,
// serially with prefetch, and partitioned 2/3/8 ways over a spilled segment,
// and demands byte-identical row streams plus matching decode/read totals.
func TestParallelScanMatchesSerial(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 5000, Seed: 7})
	d := &Def{Table: "lineitem", KeyCols: []string{"l_shipdate"}, Clustered: true, Method: compress.Row}
	si, err := BuildSegmentIndex(db, d)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pool := bufferpool.New(1 << 24)
	if err := si.Seg.Spill(filepath.Join(dir, "li.cadb"), pool); err != nil {
		t.Fatal(err)
	}
	ci := si.Seg.Schema.ColIndex("l_quantity")
	spec := &storage.DecodeSpec{
		Needed: []int{0, ci},
		Preds:  []storage.ColPredicate{{Col: ci, Op: storage.PredLe, Lo: storage.IntVal(20)}},
	}

	var refIO storage.IOStats
	refRows, refRIDs := drainBatches(t, si.ScanCursor(spec, &refIO))
	if len(refRows) == 0 {
		t.Fatal("reference scan surfaced no rows")
	}
	sameRows := func(got []storage.Row) bool {
		if len(got) != len(refRows) {
			return false
		}
		for i := range got {
			if len(got[i]) != len(refRows[i]) {
				return false
			}
			for j := range got[i] {
				if got[i][j] != refRows[i][j] {
					return false
				}
			}
		}
		return true
	}

	cases := []struct {
		name            string
		parts           int
		window, workers int
	}{
		{"serial+prefetch", 1, 8, 2},
		{"parallel2", 2, 0, 0},
		{"parallel3+prefetch", 3, 4, 2},
		{"parallel8+prefetch", 8, 4, 2},
	}
	for _, tc := range cases {
		var io storage.IOStats
		src := si.ParallelScanCursor(tc.parts, spec, &io, tc.window, tc.workers)
		rows, rids := drainBatches(t, src)
		if !sameRows(rows) {
			t.Fatalf("%s: row stream differs from serial scan", tc.name)
		}
		if len(rids) != len(refRIDs) {
			t.Fatalf("%s: %d rids vs %d", tc.name, len(rids), len(refRIDs))
		}
		for i := range rids {
			if rids[i] != refRIDs[i] {
				t.Fatalf("%s: rid %d is %d, want %d", tc.name, i, rids[i], refRIDs[i])
			}
		}
		if io.PageReads != refIO.PageReads || io.PagesDecoded != refIO.PagesDecoded ||
			io.TuplesDecoded != refIO.TuplesDecoded || io.ColumnsDecoded != refIO.ColumnsDecoded {
			t.Fatalf("%s: decode accounting diverged: %+v vs %+v", tc.name, io, refIO)
		}
		if got := io.PoolHits + io.PoolMisses; got != refIO.PoolHits+refIO.PoolMisses {
			t.Fatalf("%s: %d pool fetches, want %d", tc.name, got, refIO.PoolHits+refIO.PoolMisses)
		}
	}
}

// TestParallelScanEarlyClose abandons a partitioned scan after one batch;
// the workers must drain without leaking goroutines or pinned pages.
func TestParallelScanEarlyClose(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 4000, Seed: 7})
	d := &Def{Table: "lineitem", KeyCols: []string{"l_orderkey", "l_linenumber"}, Clustered: true, Method: compress.None}
	si, err := BuildSegmentIndex(db, d)
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(1 << 24)
	if err := si.Seg.Spill(filepath.Join(t.TempDir(), "li.cadb"), pool); err != nil {
		t.Fatal(err)
	}
	spec := &storage.DecodeSpec{Needed: []int{0}}
	var io storage.IOStats
	src := si.ParallelScanCursor(4, spec, &io, 4, 2)
	if b, err := src.NextBatch(); err != nil || b == nil {
		t.Fatalf("first batch: %v %v", b, err)
	}
	src.Close()
	src.Close() // idempotent
	// All pins must be released: the whole pool is evictable again.
	for i := 0; i < si.Seg.NumPages(); i++ {
		_, release, err := si.Seg.FetchPage(i, nil)
		if err != nil {
			t.Fatalf("page %d after close: %v", i, err)
		}
		release()
	}
	si.Seg.CloseBacking()
}
