package index

import (
	"sync"

	"cadb/internal/storage"
)

// ParallelCursor partitions a full scan across K goroutines over disjoint
// contiguous page ranges. Each partition runs its own PageRangeCursor (with
// its own IOStats sink and optional readahead) and feeds a bounded channel;
// the merger yields partition 0's batches first, then partition 1's, and so
// on. Because partitions are contiguous ascending ranges, the merged batch
// order is exactly the serial ScanCursor's ascending page order — consumers
// see byte-identical streams, just produced by concurrent disk reads and
// decodes.
//
// Per-partition IOStats are summed into the shared sink when the cursor
// finishes (exhaustion, error, or Close), never concurrently, so the sink
// needs no locking and totals match the serial scan exactly.
type ParallelCursor struct {
	parts  []*scanPart
	cur    int
	io     *storage.IOStats
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

type scanPart struct {
	ch chan partMsg
	io storage.IOStats
}

type partMsg struct {
	batch *Batch
	err   error
}

// partBatchDepth bounds how many decoded batches each partition may have in
// flight ahead of the merger — enough to keep workers busy, small enough
// that a K-way scan holds O(K) pages of decoded rows.
const partBatchDepth = 2

// ParallelScanCursor streams every page like ScanCursor but partitioned
// across parts goroutines. window/workers > 0 additionally enable per-
// partition readahead. parts is clamped to the page count; parts <= 1 falls
// back to the serial cursor (with readahead if requested).
func (si *SegmentIndex) ParallelScanCursor(parts int, spec *storage.DecodeSpec, io *storage.IOStats, window, workers int) BatchSource {
	n := si.Seg.NumPages()
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		c := si.ScanCursor(spec, io)
		if window > 0 && workers > 0 {
			c.EnablePrefetch(window, workers)
		}
		return c
	}
	pc := &ParallelCursor{io: io, stop: make(chan struct{})}
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		p := &scanPart{ch: make(chan partMsg, partBatchDepth)}
		c := si.PageRangeCursor(lo, hi, spec, &p.io)
		if window > 0 && workers > 0 {
			c.EnablePrefetch(window, workers)
		}
		pc.parts = append(pc.parts, p)
		pc.wg.Add(1)
		go pc.run(p, c)
		lo = hi
	}
	return pc
}

// run drains one partition's cursor into its channel. The cursor closes its
// own readahead on exhaustion or error; an early stop closes it explicitly.
func (pc *ParallelCursor) run(p *scanPart, c *Cursor) {
	defer pc.wg.Done()
	defer close(p.ch)
	for {
		b, err := c.NextBatch()
		if err != nil {
			select {
			case p.ch <- partMsg{err: err}:
			case <-pc.stop:
			}
			return
		}
		if b == nil {
			return
		}
		select {
		case p.ch <- partMsg{batch: b}:
		case <-pc.stop:
			c.Close()
			return
		}
	}
}

// NextBatch returns the next batch in global page order, or nil when every
// partition is drained. The first partition error aborts the whole scan.
func (pc *ParallelCursor) NextBatch() (*Batch, error) {
	for pc.cur < len(pc.parts) {
		msg, ok := <-pc.parts[pc.cur].ch
		if !ok {
			pc.cur++
			continue
		}
		if msg.err != nil {
			pc.Close()
			return nil, msg.err
		}
		return msg.batch, nil
	}
	pc.Close()
	return nil, nil
}

// Close stops the partitions, waits for their goroutines, and merges the
// per-partition IOStats into the shared sink. Idempotent; called
// automatically at exhaustion and on error.
func (pc *ParallelCursor) Close() {
	if pc.closed {
		return
	}
	pc.closed = true
	close(pc.stop)
	pc.wg.Wait()
	if pc.io != nil {
		for _, p := range pc.parts {
			pc.io.Add(p.io)
		}
	}
}
