package index

import (
	"bytes"
	"math"
	"testing"

	"cadb/internal/compress"
	"cadb/internal/datagen"
	"cadb/internal/storage"
	"cadb/internal/workload"
)

func segTestDefs() []*Def {
	return []*Def{
		{Table: "lineitem", KeyCols: []string{"l_orderkey", "l_linenumber"}, Clustered: true, Method: compress.None},
		{Table: "lineitem", KeyCols: []string{"l_shipdate"}, IncludeCols: []string{"l_quantity"}, Method: compress.Row},
		{Table: "lineitem", KeyCols: []string{"l_shipmode"}, Method: compress.Page},
		{Table: "orders", KeyCols: []string{"o_orderdate"}, Method: compress.Page},
	}
}

// TestSegmentIndexRoundTrip pins that a materialized segment decodes back to
// exactly the leaf rows the index materializer produced, for every codec and
// structure shape (clustered, secondary, MV).
func TestSegmentIndexRoundTrip(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 3000, Seed: 21})
	defs := segTestDefs()
	defs = append(defs, &Def{
		Table:   "mv_rev",
		KeyCols: []string{"lineitem_l_shipmode"},
		Method:  compress.Row,
		MV: &MVDef{
			Name:    "mv_rev",
			Fact:    "lineitem",
			GroupBy: []workload.ColRef{{Table: "lineitem", Col: "l_shipmode"}},
			Aggs:    []workload.Aggregate{{Func: workload.AggSum, Col: workload.ColRef{Table: "lineitem", Col: "l_extendedprice"}}},
		},
	})
	for _, d := range defs {
		schema, want, err := MaterializeRows(db, d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		si, err := BuildSegmentIndex(db, d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		got, err := si.Seg.ScanAll()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows vs %d", d, len(got), len(want))
		}
		for i := range got {
			g := storage.EncodeRow(schema, got[i], nil)
			w := storage.EncodeRow(schema, want[i], nil)
			if !bytes.Equal(g, w) {
				t.Fatalf("%s: row %d differs", d, i)
			}
		}
	}
}

// TestSegmentIndexSizeWithinTolerance checks the acceptance bound directly
// at the structure level: materialized bytes within 10% of the size model
// (exact for NONE/ROW).
func TestSegmentIndexSizeWithinTolerance(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 3000, Seed: 21})
	for _, d := range segTestDefs() {
		si, err := BuildSegmentIndex(db, d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if e := math.Abs(si.SizeError()); e > 0.10 {
			t.Errorf("%s: size model off by %.1f%% (est %d, actual %d)",
				d, 100*e, si.Physical.Bytes, si.MaterializedBytes())
		}
		if d.Method == compress.None || d.Method == compress.Row {
			if si.SizeError() != 0 {
				t.Errorf("%s: %s must match the model exactly, got %.4f%%",
					d, d.Method, 100*si.SizeError())
			}
		}
		estPages := storage.PagesForBytes(si.Physical.Bytes)
		gotPages := si.MaterializedPages()
		if diff := gotPages - estPages; diff < -1 && float64(-diff) > 0.1*float64(estPages) ||
			diff > 1 && float64(diff) > 0.1*float64(estPages)+1 {
			t.Errorf("%s: page estimate %d vs materialized %d", d, estPages, gotPages)
		}
	}
}

// TestSeekPagesCoversAllMatches verifies the seek contract: every row whose
// leading key falls in the bound lies inside the returned page range.
func TestSeekPagesCoversAllMatches(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 4000, Seed: 9})
	d := &Def{Table: "lineitem", KeyCols: []string{"l_shipmode"}, Method: compress.Row}
	si, err := BuildSegmentIndex(db, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"AIR", "MAIL", "TRUCK"} {
		bound := storage.StringVal(mode)
		lo, hi := si.SeekPages(bound, true, bound, true)
		var inRange, total int64
		for p := 0; p < si.Seg.NumPages(); p++ {
			rows, err := si.Seg.DecodePage(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r[0].Compare(bound) == 0 {
					total++
					if p >= lo && p < hi {
						inRange++
					}
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: degenerate (no matches)", mode)
		}
		if inRange != total {
			t.Fatalf("%s: page range [%d,%d) covers %d of %d matching rows", mode, lo, hi, inRange, total)
		}
	}
	// Unbounded seek covers everything.
	if lo, hi := si.SeekPages(storage.Value{}, false, storage.Value{}, false); lo != 0 || hi != si.Seg.NumPages() {
		t.Fatalf("unbounded seek = [%d,%d)", lo, hi)
	}
}

// TestBuildSegmentIndexAllMethods: every recommendable method — and a mixed
// per-column design — materializes to a scannable segment index.
func TestBuildSegmentIndexAllMethods(t *testing.T) {
	db := datagen.NewTPCH(datagen.TPCHConfig{LineitemRows: 500, Seed: 1})
	defs := []*Def{}
	for _, m := range append([]compress.Method{compress.None}, compress.Methods...) {
		defs = append(defs, &Def{Table: "lineitem", KeyCols: []string{"l_shipdate"}, Method: m})
	}
	defs = append(defs, &Def{
		Table: "lineitem", KeyCols: []string{"l_shipdate"}, Method: compress.Row,
		ColMethods: map[string]compress.Method{"l_shipmode": compress.GlobalDict, "l_shipdate": compress.RLE},
	})
	for _, d := range defs {
		si, err := BuildSegmentIndex(db, d)
		if err != nil {
			t.Fatalf("%s: BuildSegmentIndex: %v", d, err)
		}
		if si.Seg.Rows() != 500 {
			t.Fatalf("%s: segment has %d rows, want 500", d, si.Seg.Rows())
		}
		rows, err := si.Seg.ScanAll()
		if err != nil || len(rows) != 500 {
			t.Fatalf("%s: ScanAll: %d rows, err %v", d, len(rows), err)
		}
	}
}
