package index

import (
	"sort"

	"cadb/internal/storage"
)

// Batch is one page's worth of cursor output: the surviving rows projected
// onto the cursor's needed columns, plus where each row came from — the
// page-local slot and the segment-wide row offset (RID). Access paths use
// the (page, slot) positions to restore insertion order with a bounded
// merge instead of a global sort.
type Batch struct {
	Page  int
	Rows  []storage.Row
	Slots []int
	RIDs  []int64
}

// pageWork is one page visit: slots == nil decodes the whole page, otherwise
// only the listed slots (ascending).
type pageWork struct {
	page  int
	slots []int
}

// Cursor streams column-selective page decodes out of a segment index. Each
// NextBatch call reads and decodes pages until one yields rows (pages whose
// rows are all filtered out by the pushed predicates cost their read and a
// metadata-level decode, but materialize nothing). I/O is accounted into the
// stats sink as it happens, so a partially consumed cursor reports only the
// work actually done.
type Cursor struct {
	seg    *storage.Segment
	spec   *storage.DecodeSpec
	work   []pageWork
	at     int
	io     *storage.IOStats
	pf     *storage.Prefetcher
	pfBase int // work index the prefetch plan starts at
}

// BatchSource is the streaming contract access paths consume: NextBatch
// until nil, Close when done (Close is idempotent and required even on early
// abandonment so readahead workers drain). Cursor and ParallelCursor both
// satisfy it.
type BatchSource interface {
	NextBatch() (*Batch, error)
	Close()
}

// ScanCursor streams every page in order — the full-scan access path.
func (si *SegmentIndex) ScanCursor(spec *storage.DecodeSpec, io *storage.IOStats) *Cursor {
	return si.PageRangeCursor(0, si.Seg.NumPages(), spec, io)
}

// SeekCursor streams the conservative page range that can hold leading keys
// in [loKey, hiKey], using the per-page low keys to skip pages before any
// decode (see SeekPages).
func (si *SegmentIndex) SeekCursor(loKey storage.Value, hasLo bool, hiKey storage.Value, hasHi bool, spec *storage.DecodeSpec, io *storage.IOStats) *Cursor {
	lo, hi := si.SeekPages(loKey, hasLo, hiKey, hasHi)
	return si.PageRangeCursor(lo, hi, spec, io)
}

// PageRangeCursor streams the half-open page range [lo, hi).
func (si *SegmentIndex) PageRangeCursor(lo, hi int, spec *storage.DecodeSpec, io *storage.IOStats) *Cursor {
	work := make([]pageWork, 0, hi-lo)
	for p := lo; p < hi; p++ {
		work = append(work, pageWork{page: p})
	}
	return &Cursor{seg: si.Seg, spec: spec, work: work, io: io}
}

// RIDCursor streams exactly the rows at the given segment offsets (sorted
// ascending), visiting each page once with a slot filter — the batched heap
// lookup half of a non-covering index seek.
func (si *SegmentIndex) RIDCursor(rids []int64, spec *storage.DecodeSpec, io *storage.IOStats) *Cursor {
	if !sort.SliceIsSorted(rids, func(i, j int) bool { return rids[i] < rids[j] }) {
		rids = append([]int64(nil), rids...)
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	}
	var work []pageWork
	for i := 0; i < len(rids); {
		p := si.Seg.PageForRow(rids[i])
		if p < 0 {
			i++
			continue
		}
		start := si.Seg.PageStartRow(p)
		end := start + int64(si.Seg.PageRows(p))
		var slots []int
		for ; i < len(rids) && rids[i] < end; i++ {
			sl := int(rids[i] - start)
			if len(slots) == 0 || slots[len(slots)-1] != sl {
				slots = append(slots, sl)
			}
		}
		work = append(work, pageWork{page: p, slots: slots})
	}
	return &Cursor{seg: si.Seg, spec: spec, work: work, io: io}
}

// NumPages returns how many pages the cursor will visit in total.
func (c *Cursor) NumPages() int { return len(c.work) }

// EnablePrefetch starts async readahead over the cursor's page visit order
// (a no-op for in-memory segments or before any pages remain). The cursor
// advances the readahead frontier as it consumes pages and flushes the
// prefetch accounting into its stats sink on Close/exhaustion.
func (c *Cursor) EnablePrefetch(window, workers int) {
	if c.pf != nil || c.at >= len(c.work) {
		return
	}
	plan := make([]int, 0, len(c.work)-c.at)
	for _, w := range c.work[c.at:] {
		plan = append(plan, w.page)
	}
	c.pf = storage.StartPrefetchPlan(c.seg, plan, window, workers)
	c.pfBase = c.at
}

// Close releases the cursor's readahead (idempotent; automatic at
// exhaustion). Callers abandoning a cursor early must call it.
func (c *Cursor) Close() {
	if c.pf != nil {
		c.pf.Close(c.io)
		c.pf = nil
	}
}

// NextBatch returns the next non-empty batch, or nil when the cursor is
// exhausted.
func (c *Cursor) NextBatch() (*Batch, error) {
	for c.at < len(c.work) {
		c.pf.Advance(c.at - c.pfBase)
		w := c.work[c.at]
		c.at++
		c.io.PageReads += c.seg.Page(w.page).PhysicalPages()
		spec := c.spec
		if w.slots != nil {
			s := *c.spec
			s.Slots = w.slots
			spec = &s
		}
		payload, release, err := c.seg.FetchPage(w.page, c.io)
		if err != nil {
			c.Close()
			return nil, err
		}
		dp, err := c.seg.Codec.DecodeColumns(c.seg.Schema, payload, c.seg.PageRows(w.page), spec)
		release()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.io.PagesDecoded++
		c.io.TuplesDecoded += dp.TuplesDecoded
		c.io.ColumnsDecoded += dp.ColumnsDecoded
		if len(dp.Rows) == 0 {
			continue
		}
		start := c.seg.PageStartRow(w.page)
		rids := make([]int64, len(dp.Slots))
		for i, sl := range dp.Slots {
			rids[i] = start + int64(sl)
		}
		return &Batch{Page: w.page, Rows: dp.Rows, Slots: dp.Slots, RIDs: rids}, nil
	}
	c.Close()
	return nil, nil
}
