// Package index defines physical design structures — clustered and secondary
// indexes, partial (filtered) indexes and indexes on materialized views — and
// builds them physically: materialize the rows, sort by key, pack into pages
// and compress with the chosen method. Built sizes are measured, not modeled.
package index

import (
	"fmt"
	"sort"
	"strings"

	"cadb/internal/catalog"
	"cadb/internal/compress"
	"cadb/internal/storage"
	"cadb/internal/workload"
)

// MVDef describes a materialized view in the supported class (Appendix B):
// a fact table, optional key/foreign-key joins to dimension tables, an
// optional WHERE clause, and an optional GROUP BY with aggregates. MVs with
// grouping always carry a hidden COUNT(*) column (required for incremental
// maintenance; also the frequency statistic the Adaptive Estimator consumes).
type MVDef struct {
	Name    string
	Fact    string
	Joins   []workload.Join
	Where   []workload.Predicate
	GroupBy []workload.ColRef
	Aggs    []workload.Aggregate
}

// Fingerprint returns a canonical identity string for MV matching.
func (m *MVDef) Fingerprint() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(m.Fact))
	for _, j := range m.Joins {
		fmt.Fprintf(&b, "|j:%s", strings.ToLower(j.String()))
	}
	for _, p := range m.Where {
		fmt.Fprintf(&b, "|w:%s", strings.ToLower(p.String()))
	}
	for _, g := range m.GroupBy {
		fmt.Fprintf(&b, "|g:%s", strings.ToLower(g.String()))
	}
	for _, a := range m.Aggs {
		fmt.Fprintf(&b, "|a:%s", strings.ToLower(a.String()))
	}
	return b.String()
}

// Def describes one index (possibly hypothetical).
type Def struct {
	// Table is the base table, or the MV name when MV is set.
	Table string
	// KeyCols are the sort-key columns, in order.
	KeyCols []string
	// IncludeCols are non-key columns carried in the leaf level.
	IncludeCols []string
	// Clustered marks the table's clustered index (contains all columns).
	Clustered bool
	// Where, when non-empty, makes this a partial (filtered) index.
	Where []workload.Predicate
	// MV, when set, makes this an index on the materialized view.
	MV *MVDef
	// Method is the compression method (compress.None when uncompressed).
	// When ColMethods is non-empty it is the default of a per-column design.
	Method compress.Method
	// ColMethods optionally overrides Method per leaf column (keys are
	// lower-cased column names), making this a mixed per-column compression
	// design. Entries equal to Method are ignored.
	ColMethods map[string]compress.Method
}

// MethodFor returns the compression method of one leaf column under the
// definition's design.
func (d *Def) MethodFor(col string) compress.Method {
	if len(d.ColMethods) == 0 {
		return d.Method
	}
	if m, ok := d.ColMethods[strings.ToLower(col)]; ok {
		return m
	}
	return d.Method
}

// IsMixed reports whether the definition carries per-column overrides that
// differ from the default method. Allocation-free: it sits on the cost
// model's per-what-if α/β path.
func (d *Def) IsMixed() bool {
	for _, m := range d.ColMethods {
		if m != d.Method {
			return true
		}
	}
	return false
}

// designSig canonicalizes the per-column overrides: sorted "col=METHOD"
// entries for overrides that differ from the default, joined by commas.
// Empty for uniform designs.
func (d *Def) designSig() string {
	if len(d.ColMethods) == 0 {
		return ""
	}
	parts := make([]string, 0, len(d.ColMethods))
	for c, m := range d.ColMethods {
		if m != d.Method {
			parts = append(parts, strings.ToLower(c)+"="+m.String())
		}
	}
	if len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Columns returns key + include columns (no duplicates, preserving order).
func (d *Def) Columns() []string {
	seen := make(map[string]bool, len(d.KeyCols)+len(d.IncludeCols))
	var out []string
	for _, c := range d.KeyCols {
		lc := strings.ToLower(c)
		if !seen[lc] {
			seen[lc] = true
			out = append(out, c)
		}
	}
	for _, c := range d.IncludeCols {
		lc := strings.ToLower(c)
		if !seen[lc] {
			seen[lc] = true
			out = append(out, c)
		}
	}
	return out
}

// IsPartial reports whether the index is filtered.
func (d *Def) IsPartial() bool { return len(d.Where) > 0 }

// IsMV reports whether the index is on a materialized view.
func (d *Def) IsMV() bool { return d.MV != nil }

// WithMethod returns a copy of the definition using the given uniform
// compression method (any per-column overrides are dropped).
func (d Def) WithMethod(m compress.Method) *Def {
	d.Method = m
	d.ColMethods = nil
	return &d
}

// WithColMethod returns a copy of the definition with one column's method
// overridden (the rest of the design is preserved).
func (d Def) WithColMethod(col string, m compress.Method) *Def {
	cm := make(map[string]compress.Method, len(d.ColMethods)+1)
	for c, mm := range d.ColMethods {
		cm[c] = mm
	}
	cm[strings.ToLower(col)] = m
	d.ColMethods = cm
	return &d
}

// Uncompressed returns the uncompressed variant of the definition.
func (d Def) Uncompressed() *Def { return d.WithMethod(compress.None) }

// ID returns a canonical identity string: same ID ⇒ same physical structure.
func (d *Def) ID() string {
	var b strings.Builder
	if d.Clustered {
		b.WriteString("CL:")
	}
	b.WriteString(strings.ToLower(d.Table))
	b.WriteString("(")
	b.WriteString(strings.ToLower(strings.Join(d.KeyCols, ",")))
	if len(d.IncludeCols) > 0 {
		inc := make([]string, len(d.IncludeCols))
		copy(inc, d.IncludeCols)
		sort.Strings(inc)
		b.WriteString(" incl ")
		b.WriteString(strings.ToLower(strings.Join(inc, ",")))
	}
	b.WriteString(")")
	for _, p := range d.Where {
		fmt.Fprintf(&b, " where %s", strings.ToLower(p.String()))
	}
	if d.MV != nil {
		fmt.Fprintf(&b, " on mv{%s}", d.MV.Fingerprint())
	}
	fmt.Fprintf(&b, " %s", d.Method)
	if sig := d.designSig(); sig != "" {
		fmt.Fprintf(&b, "[%s]", sig)
	}
	return b.String()
}

// StructureID is ID without the compression design: variants of the same
// index share it.
func (d *Def) StructureID() string {
	c := *d
	c.Method = compress.None
	c.ColMethods = nil
	id := c.ID()
	return strings.TrimSuffix(id, " "+compress.None.String())
}

// String renders a DDL-ish description.
func (d *Def) String() string {
	kind := "INDEX"
	if d.Clustered {
		kind = "CLUSTERED INDEX"
	}
	s := fmt.Sprintf("%s ON %s(%s)", kind, d.Table, strings.Join(d.KeyCols, ", "))
	if len(d.IncludeCols) > 0 {
		s += fmt.Sprintf(" INCLUDE(%s)", strings.Join(d.IncludeCols, ", "))
	}
	if len(d.Where) > 0 {
		parts := make([]string, len(d.Where))
		for i, p := range d.Where {
			parts[i] = p.String()
		}
		s += " WHERE " + strings.Join(parts, " AND ")
	}
	if d.MV != nil {
		s += " [MV " + d.MV.Name + "]"
	}
	if sig := d.designSig(); sig != "" {
		s += " COMPRESS " + d.Method.String() + "[" + sig + "]"
	} else if d.Method != compress.None {
		s += " COMPRESS " + d.Method.String()
	}
	return s
}

// Physical is a fully built index with measured sizes.
type Physical struct {
	Def    *Def
	Schema *storage.Schema
	// Rows is the number of leaf entries.
	Rows int64
	// UncompressedBytes is the leaf payload before compression.
	UncompressedBytes int64
	// Bytes is the leaf payload under Def.Method.
	Bytes int64
	// Pages is Bytes in pages.
	Pages int64
}

// CF returns the measured compression fraction.
func (p *Physical) CF() float64 {
	if p.UncompressedBytes == 0 {
		return 1
	}
	return float64(p.Bytes) / float64(p.UncompressedBytes)
}

// ridWidth is the byte width of the row locator appended to non-clustered
// index entries.
const ridWidth = 8

// MaterializeRows produces the leaf rows (and their schema) of the index over
// the given database, already sorted by the key columns. Non-clustered
// indexes carry an 8-byte row locator column. For MV indexes the view is
// materialized first.
func MaterializeRows(db *catalog.Database, d *Def) (*storage.Schema, []storage.Row, error) {
	var baseSchema *storage.Schema
	var baseRows []storage.Row
	if d.MV != nil {
		var err error
		baseSchema, baseRows, err = MaterializeMV(db, d.MV)
		if err != nil {
			return nil, nil, err
		}
	} else {
		t := db.Table(d.Table)
		if t == nil {
			return nil, nil, fmt.Errorf("index: unknown table %q", d.Table)
		}
		baseSchema, baseRows = t.Schema, t.Rows
	}
	return buildLeafRows(baseSchema, baseRows, d)
}

// MaterializeOver builds the index leaf rows over an explicit base row set
// instead of the catalog table — this is how SampleCF builds an index on a
// sample (Section 2.2).
func MaterializeOver(baseSchema *storage.Schema, baseRows []storage.Row, d *Def) (*storage.Schema, []storage.Row, error) {
	return buildLeafRows(baseSchema, baseRows, d)
}

// buildLeafRows filters, projects, appends the RID column and sorts.
func buildLeafRows(baseSchema *storage.Schema, baseRows []storage.Row, d *Def) (*storage.Schema, []storage.Row, error) {
	// Filter for partial indexes.
	rows := baseRows
	if d.IsPartial() {
		rows = make([]storage.Row, 0, len(baseRows)/4)
		for _, r := range baseRows {
			ok := true
			for _, p := range d.Where {
				if !p.Matches(baseSchema, r) {
					ok = false
					break
				}
			}
			if ok {
				rows = append(rows, r)
			}
		}
	}

	var cols []string
	if d.Clustered {
		cols = baseSchema.Names()
		// Clustered key columns must lead, keeping the full column set.
		cols = reorderLeading(cols, d.KeyCols)
	} else {
		cols = d.Columns()
	}
	for _, c := range cols {
		if !baseSchema.Has(c) {
			return nil, nil, fmt.Errorf("index: column %q not in %s", c, d.Table)
		}
	}
	schema := baseSchema.Project(cols)
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		colIdx[i] = baseSchema.ColIndex(c)
	}

	addRID := !d.Clustered
	outCols := schema.Columns
	if addRID {
		outCols = append(append([]storage.Column{}, outCols...), storage.Column{Name: "__rid", Kind: storage.KindInt})
		schema = storage.NewSchema(outCols...)
	}

	out := make([]storage.Row, len(rows))
	for i, r := range rows {
		n := len(colIdx)
		row := make(storage.Row, n, n+1)
		for j, ci := range colIdx {
			row[j] = r[ci]
		}
		if addRID {
			row = append(row, storage.IntVal(int64(i)))
		}
		out[i] = row
	}

	nKeys := len(d.KeyCols)
	sort.SliceStable(out, func(i, j int) bool {
		for k := 0; k < nKeys; k++ {
			if c := out[i][k].Compare(out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return schema, out, nil
}

// reorderLeading moves the key columns to the front of the column list,
// keeping the remaining order stable.
func reorderLeading(all []string, keys []string) []string {
	isKey := make(map[string]bool, len(keys))
	out := make([]string, 0, len(all))
	for _, k := range keys {
		isKey[strings.ToLower(k)] = true
		out = append(out, k)
	}
	for _, c := range all {
		if !isKey[strings.ToLower(c)] {
			out = append(out, c)
		}
	}
	return out
}

// Build materializes and measures the index.
func Build(db *catalog.Database, d *Def) (*Physical, error) {
	schema, rows, err := MaterializeRows(db, d)
	if err != nil {
		return nil, err
	}
	return BuildFromRows(schema, rows, d), nil
}

// BuildFromRows measures an index over pre-materialized, pre-sorted leaf
// rows. Used by SampleCF, which builds indexes on samples.
func BuildFromRows(schema *storage.Schema, rows []storage.Row, d *Def) *Physical {
	unc := compress.SizeRows(schema, rows, compress.None)
	bytes := unc
	if d.IsMixed() {
		bytes = compress.SizeRowsDesign(schema, rows, d.Method, d.ColMethods)
	} else if d.Method != compress.None {
		bytes = compress.SizeRows(schema, rows, d.Method)
	}
	return &Physical{
		Def:               d,
		Schema:            schema,
		Rows:              int64(len(rows)),
		UncompressedBytes: unc,
		Bytes:             bytes,
		Pages:             storage.PagesForBytes(bytes),
	}
}
