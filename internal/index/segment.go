package index

import (
	"fmt"
	"sort"

	"cadb/internal/catalog"
	"cadb/internal/compress"
	"cadb/internal/storage"
)

// SegmentIndex is a physically materialized index: the leaf rows encoded
// into a compressed page-backed segment, plus the per-page low keys a seek
// needs to land on the right leaf page without decoding the level. It is the
// ground truth the size model's estimates (Physical.Bytes/Pages) are diffed
// against.
type SegmentIndex struct {
	Def *Def
	// Physical carries the size-model measurements (compress.SizeRows over
	// the leaf rows) for the same definition.
	Physical *Physical
	// Seg is the materialized page store.
	Seg *storage.Segment
	// lowKeys[i] holds the key-column values of the first row on page i.
	lowKeys [][]storage.Value
	nKeys   int
}

// BuildSegmentIndex materializes the index as a compressed segment over the
// database. Only methods with a materializing codec (NONE, ROW, PAGE) can be
// built; estimation-only methods return an error.
func BuildSegmentIndex(db *catalog.Database, d *Def) (*SegmentIndex, error) {
	schema, rows, err := MaterializeRows(db, d)
	if err != nil {
		return nil, err
	}
	return BuildSegmentOver(schema, rows, d)
}

// BuildSegmentOver materializes a segment index over pre-built, pre-sorted
// leaf rows.
func BuildSegmentOver(schema *storage.Schema, rows []storage.Row, d *Def) (*SegmentIndex, error) {
	codec := compress.DesignCodec(d.Method, d.ColMethods)
	if codec == nil {
		return nil, fmt.Errorf("index: method %s has no materializing codec", d.Method)
	}
	seg, err := storage.BuildSegment(schema, rows, codec)
	if err != nil {
		return nil, err
	}
	si := &SegmentIndex{
		Def:      d,
		Physical: BuildFromRows(schema, rows, d),
		Seg:      seg,
		nKeys:    len(d.KeyCols),
	}
	if si.nKeys > 0 {
		si.lowKeys = make([][]storage.Value, seg.NumPages())
		at := 0
		for i := 0; i < seg.NumPages(); i++ {
			key := make([]storage.Value, si.nKeys)
			copy(key, rows[at][:si.nKeys])
			si.lowKeys[i] = key
			at += seg.PageRows(i)
		}
	}
	return si, nil
}

// WrapSegment wraps an already-built segment — typically one streamed to
// disk by a storage.SegmentWriter — as a scan-only SegmentIndex: it carries
// no per-page low keys (SeekPages degrades to the full page range) and no
// size-model Physical, but ScanCursor, PageRangeCursor and
// ParallelScanCursor work unchanged. This is how out-of-core builds, which
// never hold the rows needed to extract low keys, join the cursor machinery.
func WrapSegment(seg *storage.Segment, d *Def) *SegmentIndex {
	return &SegmentIndex{Def: d, Seg: seg}
}

// Schema returns the leaf schema (key + include columns, plus __rid for
// non-clustered indexes).
func (si *SegmentIndex) Schema() *storage.Schema { return si.Seg.Schema }

// MaterializedBytes is the accounted payload size of the real segment.
func (si *SegmentIndex) MaterializedBytes() int64 { return si.Seg.PayloadBytes() }

// MaterializedPages is the physical page count of the real segment.
func (si *SegmentIndex) MaterializedPages() int64 { return si.Seg.PhysicalPages() }

// SizeError returns the relative error of the size model against the
// materialized segment: (estimated - actual) / actual.
func (si *SegmentIndex) SizeError() float64 {
	actual := si.MaterializedBytes()
	if actual == 0 {
		return 0
	}
	return float64(si.Physical.Bytes-actual) / float64(actual)
}

// compareKey orders a page low key against a single leading-key bound.
func leadingCompare(key []storage.Value, bound storage.Value) int {
	if len(key) == 0 {
		return 0
	}
	return key[0].Compare(bound.CoerceTo(key[0].Kind))
}

// SeekPages returns the half-open page range [lo, hi) that can contain rows
// whose leading key lies in [loKey, hiKey]. Unbounded ends are expressed
// with hasLo/hasHi=false. The range is conservative: every qualifying row is
// inside it, pages at the edges may hold non-qualifying rows.
func (si *SegmentIndex) SeekPages(loKey storage.Value, hasLo bool, hiKey storage.Value, hasHi bool) (int, int) {
	n := si.Seg.NumPages()
	if si.nKeys == 0 || n == 0 {
		return 0, n
	}
	lo := 0
	if hasLo {
		// First page whose low key reaches loKey; the qualifying range can
		// start on the page before it (whose tail may hold loKey), but no
		// earlier — every row there is strictly below the page after's low
		// key. Note >= 0, not > 0: with duplicate keys spanning pages, the
		// first qualifying row sits before the *last* page opening with
		// loKey.
		i := sort.Search(n, func(i int) bool { return leadingCompare(si.lowKeys[i], loKey) >= 0 })
		lo = i - 1
		if lo < 0 {
			lo = 0
		}
	}
	hi := n
	if hasHi {
		// Pages whose low key exceeds hiKey cannot hold qualifying rows.
		hi = sort.Search(n, func(i int) bool { return leadingCompare(si.lowKeys[i], hiKey) > 0 })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
