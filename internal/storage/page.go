package storage

// PageSize is the fixed size of a database page in bytes (SQL Server uses
// 8 KB pages; so do we).
const PageSize = 8192

// PageHeaderSize approximates the per-page header + slot array overhead of a
// slotted page. Rows are packed into PageSize-PageHeaderSize usable bytes.
const PageHeaderSize = 96

// SlotSize is the per-row slot entry in the slot array.
const SlotSize = 2

// UsablePageBytes is the space available for row payloads on a page.
const UsablePageBytes = PageSize - PageHeaderSize

// PagesForBytes returns the number of pages needed to hold n payload bytes,
// at least 1 for non-empty payloads.
func PagesForBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	p := (n + UsablePageBytes - 1) / UsablePageBytes
	if p < 1 {
		p = 1
	}
	return p
}

// PageGroup is a run of rows that share a physical page in the uncompressed
// layout. Page-local (order-dependent) compression operates on these groups.
type PageGroup struct {
	Start, End int // half-open row range [Start, End)
	Bytes      int // payload bytes of the group, uncompressed
}

// PackRows partitions rows (already in index order) into page groups using
// the uncompressed encoding size of each row. It returns the groups and the
// total uncompressed payload size in bytes.
//
// Packing follows the first-fit rule of a bulk-loaded B+-tree leaf level with
// a 100% fill factor: rows are appended until the next row would overflow the
// page. A row wider than UsablePageBytes gets a group of its own spanning an
// overflow-page run, charged at whole pages (ceil of its true encoded size) —
// clamping it to a single page would under-count the payload bytes that
// heap-size and compression-fraction estimates are built on.
func PackRows(s *Schema, rows []Row) ([]PageGroup, int64) {
	var groups []PageGroup
	var total int64
	start := 0
	used := 0
	flush := func(end int) {
		if end > start {
			groups = append(groups, PageGroup{Start: start, End: end, Bytes: used})
			start = end
			used = 0
		}
	}
	for i, r := range rows {
		sz := EncodedRowSize(s, r) + SlotSize
		if sz > UsablePageBytes {
			flush(i)
			used = int(PagesForBytes(int64(sz))) * UsablePageBytes
			total += int64(used)
			flush(i + 1)
			continue
		}
		if used+sz > UsablePageBytes && used > 0 {
			flush(i)
		}
		used += sz
		total += int64(sz)
	}
	flush(len(rows))
	return groups, total
}

// RowsPerPage estimates how many rows of the given schema fit on one page,
// using the fixed part of the row width. It is at least 1.
func RowsPerPage(s *Schema) int {
	w := s.RowWidth() + SlotSize
	n := UsablePageBytes / w
	if n < 1 {
		n = 1
	}
	return n
}
