//go:build linux && (amd64 || arm64)

package storage

import (
	"os"
	"syscall"
)

// POSIX_FADV_* values from fadvise(2).
const (
	fadvRandom   = 1 // disable kernel readahead on this handle
	fadvDontNeed = 4 // drop this file's cached pages
)

// adviseRandom turns off kernel readahead on a segment file handle. The
// buffer pool owns caching and readahead for segment pages — letting the
// kernel read ahead as well double-caches the file and hands the serial scan
// an invisible prefetcher, so readahead would no longer be the explicit,
// pool-accounted operation the cost model reasons about. Best-effort.
func adviseRandom(f *os.File) {
	syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, fadvRandom, 0, 0)
}

// DropOSCache evicts path's pages from the operating-system page cache so a
// subsequent read is a genuinely cold disk read. The file is fsynced first —
// dirty pages cannot be dropped — then posix_fadvise(DONTNEED) is issued over
// the whole file. Best-effort: benchmarks that want cold-read numbers call it
// between runs; correctness never depends on it.
func DropOSCache(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	if _, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, fadvDontNeed, 0, 0); errno != 0 {
		return errno
	}
	return nil
}
