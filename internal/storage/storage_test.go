package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "price", Kind: KindFloat},
		Column{Name: "state", Kind: KindString, FixedWidth: 10, Nullable: true},
		Column{Name: "comment", Kind: KindString},
		Column{Name: "ship", Kind: KindDate, Nullable: true},
	)
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{FloatVal(1.5), FloatVal(2.5), -1},
		{StringVal("abc"), StringVal("abd"), -1},
		{StringVal("b"), StringVal("ab"), 1},
		{DateVal(10), DateVal(10), 0},
		{NullValue(KindInt), IntVal(0), -1},
		{IntVal(0), NullValue(KindInt), 1},
		{NullValue(KindInt), NullValue(KindInt), 0},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v)=%d want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueKeyEquality(t *testing.T) {
	a := StringVal("hello")
	b := StringVal("hello")
	if a.Key() != b.Key() {
		t.Fatal("equal string values must have equal keys")
	}
	if IntVal(5).Key() == IntVal(6).Key() {
		t.Fatal("distinct ints must have distinct keys")
	}
	if NullValue(KindInt).Key() == IntVal(0).Key() {
		t.Fatal("NULL and 0 must have distinct keys")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if got := s.ColIndex("PRICE"); got != 1 {
		t.Fatalf("ColIndex(PRICE)=%d want 1 (case-insensitive)", got)
	}
	if s.ColIndex("missing") != -1 {
		t.Fatal("missing column should return -1")
	}
	if !s.Has("ship") || s.Has("nothere") {
		t.Fatal("Has misbehaves")
	}
	p := s.Project([]string{"state", "id"})
	if len(p.Columns) != 2 || p.Columns[0].Name != "state" || p.Columns[1].Name != "id" {
		t.Fatalf("Project wrong: %v", p.Names())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt})
}

func sampleRow() Row {
	return Row{
		IntVal(42),
		FloatVal(19.99),
		StringVal("CA"),
		StringVal("fast delivery"),
		DateVal(14000),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	rows := []Row{
		sampleRow(),
		{IntVal(-7), FloatVal(0), NullValue(KindString), StringVal(""), NullValue(KindDate)},
		{IntVal(1 << 40), FloatVal(-3.25), StringVal("WASHINGTON"), StringVal("x"), DateVal(-5)},
	}
	for i, r := range rows {
		enc := EncodeRow(s, r, nil)
		if len(enc) != EncodedRowSize(s, r) {
			t.Fatalf("row %d: size mismatch: got %d want %d", i, len(enc), EncodedRowSize(s, r))
		}
		dec, n, err := DecodeRow(s, enc)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("row %d: consumed %d of %d", i, n, len(enc))
		}
		for j := range r {
			if !dec[j].Equal(r[j]) && !(r[j].Null && dec[j].Null) {
				t.Errorf("row %d col %d: got %v want %v", i, j, dec[j], r[j])
			}
			if r[j].Null != dec[j].Null {
				t.Errorf("row %d col %d: null mismatch", i, j)
			}
		}
	}
}

func TestEncodeRowFixedCharPadding(t *testing.T) {
	s := NewSchema(Column{Name: "c", Kind: KindString, FixedWidth: 8})
	r := Row{StringVal("ab")}
	enc := EncodeRow(s, r, nil)
	// 1 bitmap byte + 8 padded chars.
	if len(enc) != 9 {
		t.Fatalf("CHAR(8) row size=%d want 9", len(enc))
	}
	dec, _, err := DecodeRow(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].Str != "ab" {
		t.Fatalf("padding not stripped: %q", dec[0].Str)
	}
}

func TestEncodeRowTruncatesOversizedChar(t *testing.T) {
	s := NewSchema(Column{Name: "c", Kind: KindString, FixedWidth: 3})
	enc := EncodeRow(s, Row{StringVal("abcdef")}, nil)
	dec, _, err := DecodeRow(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].Str != "abc" {
		t.Fatalf("got %q want %q", dec[0].Str, "abc")
	}
}

func TestDecodeRowShortInput(t *testing.T) {
	s := testSchema()
	enc := EncodeRow(s, sampleRow(), nil)
	for _, cut := range []int{0, 1, 5, len(enc) - 1} {
		if _, _, err := DecodeRow(s, enc[:cut]); err == nil {
			t.Errorf("cut=%d: expected error on truncated input", cut)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindFloat},
		Column{Name: "c", Kind: KindString},
	)
	f := func(a int64, b float64, c string, aNull, cNull bool) bool {
		// NaN compares unequal to itself; skip those inputs.
		if b != b {
			return true
		}
		if len(c) > 0xFFFF {
			c = c[:0xFFFF]
		}
		r := Row{IntVal(a), FloatVal(b), StringVal(c)}
		if aNull {
			r[0] = NullValue(KindInt)
		}
		if cNull {
			r[2] = NullValue(KindString)
		}
		enc := EncodeRow(s, r, nil)
		dec, n, err := DecodeRow(s, enc)
		if err != nil || n != len(enc) {
			return false
		}
		for i := range r {
			if r[i].Null != dec[i].Null {
				return false
			}
			if !r[i].Null && !r[i].Equal(dec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackRowsBasic(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt})
	var rows []Row
	for i := 0; i < 5000; i++ {
		rows = append(rows, Row{IntVal(int64(i))})
	}
	groups, total := PackRows(s, rows)
	if total <= 0 {
		t.Fatal("total must be positive")
	}
	// Every row appears in exactly one group, in order.
	at := 0
	for _, g := range groups {
		if g.Start != at {
			t.Fatalf("gap: group starts at %d, expected %d", g.Start, at)
		}
		if g.End <= g.Start {
			t.Fatalf("empty group %+v", g)
		}
		if g.Bytes > UsablePageBytes {
			t.Fatalf("group overflows a page: %d", g.Bytes)
		}
		at = g.End
	}
	if at != len(rows) {
		t.Fatalf("groups cover %d rows, want %d", at, len(rows))
	}
	if len(groups) < 2 {
		t.Fatalf("5000 rows should span multiple pages, got %d groups", len(groups))
	}
}

// TestPackRowsOversizedRowAccounting pins the overflow-page fix: a row wider
// than a page must be charged whole overflow pages (ceil of its true encoded
// size), not clamped to a single page — clamping under-counted the heap and
// compression-fraction estimates of wide-string schemas.
func TestPackRowsOversizedRowAccounting(t *testing.T) {
	s := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "blob", Kind: KindString},
	)
	big := make([]byte, 2*UsablePageBytes+500)
	for i := range big {
		big[i] = 'a'
	}
	rows := []Row{
		{IntVal(1), StringVal("x")},
		{IntVal(2), StringVal(string(big))},
		{IntVal(3), StringVal("y")},
	}
	groups, total := PackRows(s, rows)
	if len(groups) != 3 {
		t.Fatalf("want 3 groups (row, overflow run, row), got %d: %+v", len(groups), groups)
	}
	over := groups[1]
	if over.Start != 1 || over.End != 2 {
		t.Fatalf("overflow group must hold exactly the oversized row: %+v", over)
	}
	sz := EncodedRowSize(s, rows[1]) + SlotSize
	wantBytes := int(PagesForBytes(int64(sz))) * UsablePageBytes
	if over.Bytes != wantBytes {
		t.Fatalf("overflow charged %d bytes, want %d (ceil of %d)", over.Bytes, wantBytes, sz)
	}
	if total < int64(sz) {
		t.Fatalf("total %d under-counts the oversized row (%d encoded bytes)", total, sz)
	}
	if got := PagesForBytes(total); got < 3 {
		t.Fatalf("a >2-page row must need at least 3 pages, got %d", got)
	}
	// Row coverage stays contiguous.
	at := 0
	for _, g := range groups {
		if g.Start != at {
			t.Fatalf("gap at %d: %+v", at, g)
		}
		at = g.End
	}
}

func TestPackRowsEmpty(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt})
	groups, total := PackRows(s, nil)
	if len(groups) != 0 || total != 0 {
		t.Fatalf("empty input: groups=%d total=%d", len(groups), total)
	}
}

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{UsablePageBytes, 1},
		{UsablePageBytes + 1, 2},
		{10 * UsablePageBytes, 10},
	}
	for _, c := range cases {
		if got := PagesForBytes(c.n); got != c.want {
			t.Errorf("PagesForBytes(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestRowsPerPagePositive(t *testing.T) {
	s := testSchema()
	if RowsPerPage(s) < 1 {
		t.Fatal("RowsPerPage must be at least 1")
	}
	wide := NewSchema(Column{Name: "big", Kind: KindString, FixedWidth: 100000})
	if RowsPerPage(wide) != 1 {
		t.Fatal("oversized rows still get one per page")
	}
}

func TestAvgRowWidth(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(1))
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{
			IntVal(rng.Int63n(1000)),
			FloatVal(rng.Float64()),
			StringVal("NY"),
			StringVal("some comment"),
			DateVal(int64(rng.Intn(3650))),
		})
	}
	avg := s.AvgRowWidth(rows)
	if avg <= 0 {
		t.Fatal("average width must be positive")
	}
	// With fixed-width parts only varying by the comment, the average must
	// equal the exact encoded size of any row here (all same widths).
	if want := float64(EncodedRowSize(s, rows[0])); avg != want {
		t.Fatalf("avg=%v want %v", avg, want)
	}
	if s.AvgRowWidth(nil) != float64(s.RowWidth()) {
		t.Fatal("empty input should fall back to schema RowWidth")
	}
}

func TestRowWithValueCopyOnWrite(t *testing.T) {
	r := Row{IntVal(1), StringVal("a")}
	r2 := r.WithValue(1, StringVal("b"))
	if r[1].Str != "a" {
		t.Fatal("WithValue must not mutate the receiver")
	}
	if r2[0].Int != 1 || r2[1].Str != "b" {
		t.Fatalf("WithValue result wrong: %v", r2)
	}
}
