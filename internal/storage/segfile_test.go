package storage

import (
	"os"
	"path/filepath"
	"testing"

	"cadb/internal/bufferpool"
)

// plainCodec is the minimal row-major test codec (mirrors the NONE layout
// closely enough for round-trips without importing internal/compress, which
// would cycle).
type plainCodec struct{}

func (plainCodec) Name() string { return "TEST" }

func (plainCodec) EncodeRows(s *Schema, rows []Row) ([]EncodedPage, error) {
	groups, _ := PackRows(s, rows)
	out := make([]EncodedPage, 0, len(groups))
	for _, g := range groups {
		var payload []byte
		for _, r := range rows[g.Start:g.End] {
			payload = EncodeRow(s, r, payload)
		}
		out = append(out, EncodedPage{
			Payload:        payload,
			Rows:           g.End - g.Start,
			AccountedBytes: len(payload) + SlotSize*(g.End-g.Start),
		})
	}
	return out, nil
}

func (plainCodec) DecodePage(s *Schema, payload []byte, nrows int) ([]Row, error) {
	rows := make([]Row, 0, nrows)
	for at := 0; len(rows) < nrows; {
		r, n, err := DecodeRow(s, payload[at:])
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
		at += n
	}
	return rows, nil
}

func (c plainCodec) DecodeColumns(s *Schema, payload []byte, nrows int, spec *DecodeSpec) (*DecodedPage, error) {
	full, err := c.DecodePage(s, payload, nrows)
	if err != nil {
		return nil, err
	}
	return FallbackDecodeColumns(s, full, spec), nil
}

func testSegment(t *testing.T, nrows int) (*Schema, []Row, *Segment) {
	t.Helper()
	s := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString, FixedWidth: 40},
		Column{Name: "val", Kind: KindFloat},
	)
	rows := make([]Row, nrows)
	for i := range rows {
		rows[i] = Row{IntVal(int64(i)), StringVal("row-padding-padding-padding"), FloatVal(float64(i) / 3)}
	}
	seg, err := BuildSegment(s, rows, plainCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return s, rows, seg
}

// TestSegmentFileRoundTrip spills a segment, re-opens the file cold, and
// checks header metadata and every page payload round-trip exactly.
func TestSegmentFileRoundTrip(t *testing.T) {
	_, rows, seg := testSegment(t, 2000)
	path := filepath.Join(t.TempDir(), "seg.cadb")
	sf, err := WriteSegmentFile(path, seg)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	re, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != seg.NumPages() || re.Rows() != seg.Rows() || re.CodecName() != "TEST" {
		t.Fatalf("header mismatch: %d pages %d rows codec %q", re.NumPages(), re.Rows(), re.CodecName())
	}
	if re.PayloadBytes() != seg.DiskBytes() {
		t.Fatalf("payload bytes %d, segment disk bytes %d", re.PayloadBytes(), seg.DiskBytes())
	}
	var decoded int
	for i := 0; i < re.NumPages(); i++ {
		payload, err := re.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := seg.Codec.DecodePage(seg.Schema, payload, re.PageRows(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if r[0].Int != rows[decoded][0].Int {
				t.Fatalf("row %d: got id %d", decoded, r[0].Int)
			}
			decoded++
		}
	}
	if decoded != len(rows) {
		t.Fatalf("decoded %d of %d rows", decoded, len(rows))
	}
}

// TestSegmentFileDetectsCorruption flips one payload byte on disk and checks
// the page read fails its checksum (and a header flip fails open).
func TestSegmentFileDetectsCorruption(t *testing.T) {
	_, _, seg := testSegment(t, 500)
	path := filepath.Join(t.TempDir(), "seg.cadb")
	sf, err := WriteSegmentFile(path, seg)
	if err != nil {
		t.Fatal(err)
	}
	sf.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last payload byte.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSegmentFile(path)
	if err != nil {
		t.Fatal(err) // header is intact
	}
	if _, err := re.ReadPage(re.NumPages() - 1); err == nil {
		t.Fatal("corrupted page passed its checksum")
	}
	re.Close()

	// Corrupt the header (codec name byte).
	corrupt = append([]byte(nil), raw...)
	corrupt[17] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentFile(path); err == nil {
		t.Fatal("corrupted header passed its checksum")
	}
}

// TestSpillAndFetch spills a segment through a pool and checks decode
// results are unchanged, payloads are released from memory, pool stats are
// counted per fetch, and CloseBacking turns later fetches into errors.
func TestSpillAndFetch(t *testing.T) {
	_, rows, seg := testSegment(t, 1500)
	want, err := seg.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(1 << 20)
	if err := seg.Spill(filepath.Join(t.TempDir(), "seg.cadb"), pool); err != nil {
		t.Fatal(err)
	}
	if !seg.Backed() {
		t.Fatal("segment not backed after spill")
	}
	for i := 0; i < seg.NumPages(); i++ {
		if seg.Page(i).Payload != nil {
			t.Fatalf("page %d still holds its payload after spill", i)
		}
	}
	var io IOStats
	var got []Row
	for i := 0; i < seg.NumPages(); i++ {
		payload, release, err := seg.FetchPage(i, &io)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := seg.Codec.DecodePage(seg.Schema, payload, seg.PageRows(i))
		release()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != len(want) || len(got) != len(rows) {
		t.Fatalf("scan through pool returned %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0].Int != want[i][0].Int {
			t.Fatalf("row %d differs after spill", i)
		}
	}
	if io.PoolMisses != int64(seg.NumPages()) || io.PoolHits != 0 {
		t.Fatalf("cold scan: %d misses %d hits, want %d/0", io.PoolMisses, io.PoolHits, seg.NumPages())
	}
	if io.BytesRead != seg.DiskBytes() {
		t.Fatalf("cold scan read %d bytes, want %d", io.BytesRead, seg.DiskBytes())
	}
	// Second scan: everything fits, so all hits.
	io = IOStats{}
	for i := 0; i < seg.NumPages(); i++ {
		_, release, err := seg.FetchPage(i, &io)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if io.PoolHits != int64(seg.NumPages()) || io.PoolMisses != 0 {
		t.Fatalf("warm scan: %d hits %d misses", io.PoolHits, io.PoolMisses)
	}

	seg.CloseBacking()
	if _, _, err := seg.FetchPage(0, nil); err == nil {
		t.Fatal("fetch from a closed backing should fail (stale-page guard)")
	}
	if pool.Bytes() != 0 {
		t.Fatalf("pool still holds %d bytes after CloseBacking", pool.Bytes())
	}
}
