package storage

// This file is the column-selective half of the codec contract: the decode
// spec an access path pushes down into PageCodec.DecodeColumns, the batch it
// gets back, and the I/O counters every segment-backed execution reports.
// Predicates are expressed against column ordinals with bounds already
// coerced to the column kind, so codecs can evaluate them without knowing
// anything about query syntax or name resolution.

// IOStats counts the physical work of a segment-backed execution.
type IOStats struct {
	// PageReads is the number of physical page accesses (an overflow run
	// counts once per page; a page re-read by a later RID batch counts
	// again).
	PageReads int64
	// PagesDecoded is the number of pages run through a codec (cache hits
	// within one statement don't decode twice).
	PagesDecoded int64
	// TuplesDecoded is the number of rows materialized by those decodes.
	TuplesDecoded int64
	// ColumnsDecoded is the number of per-page column payloads materialized:
	// a full decode of a page with C columns counts C, a selective decode
	// counts only the columns actually evaluated or reconstructed.
	ColumnsDecoded int64
	// PoolHits counts page fetches served from the buffer pool without disk
	// I/O. Zero for in-memory (unspilled) segments.
	PoolHits int64
	// PoolMisses counts page fetches that had to load from disk.
	PoolMisses int64
	// BytesRead is the payload bytes loaded from disk on pool misses and
	// prefetches — the statement's actual I/O volume under the disk-backed
	// path.
	BytesRead int64
	// PoolPrefetched counts pages speculatively loaded by readahead on this
	// statement's behalf (each later fetch of such a page is a PoolHit, not a
	// PoolMiss; prefetched bytes are in BytesRead).
	PoolPrefetched int64
}

// Add accumulates another stats bucket.
func (io *IOStats) Add(o IOStats) {
	io.PageReads += o.PageReads
	io.PagesDecoded += o.PagesDecoded
	io.TuplesDecoded += o.TuplesDecoded
	io.ColumnsDecoded += o.ColumnsDecoded
	io.PoolHits += o.PoolHits
	io.PoolMisses += o.PoolMisses
	io.BytesRead += o.BytesRead
	io.PoolPrefetched += o.PoolPrefetched
}

// PredOp enumerates the comparison operators a pushed-down predicate can
// carry. The set mirrors workload.CmpOp; the executor translates between
// them when it compiles a predicate against a concrete schema.
type PredOp uint8

const (
	PredEq PredOp = iota
	PredNe
	PredLt
	PredLe
	PredGt
	PredGe
	PredBetween
)

// ColPredicate is a comparison against one column, resolved to an ordinal
// with bounds pre-coerced to the column kind. Lo is the operand for every
// operator; Hi is used only by PredBetween.
type ColPredicate struct {
	Col    int
	Op     PredOp
	Lo, Hi Value
}

// Matches evaluates the predicate against a single value with the same
// semantics as workload.Predicate.Matches: NULL never satisfies any
// operator (SQL three-valued logic), and bounds are compared with
// Value.Compare.
func (p ColPredicate) Matches(v Value) bool {
	if v.Null {
		return false
	}
	switch p.Op {
	case PredEq:
		return v.Compare(p.Lo) == 0
	case PredNe:
		return v.Compare(p.Lo) != 0
	case PredLt:
		return v.Compare(p.Lo) < 0
	case PredLe:
		return v.Compare(p.Lo) <= 0
	case PredGt:
		return v.Compare(p.Lo) > 0
	case PredGe:
		return v.Compare(p.Lo) >= 0
	case PredBetween:
		return v.Compare(p.Lo) >= 0 && v.Compare(p.Hi) <= 0
	}
	return false
}

// DecodeSpec tells a codec which columns of a page to reconstruct and which
// predicates to apply while doing so. A row is returned only if it passes
// every predicate (and, when Slots is set, sits on one of the listed slots).
type DecodeSpec struct {
	// Needed lists the column ordinals to materialize, strictly ascending.
	// Returned rows have exactly len(Needed) values, in this order.
	Needed []int
	// Preds are the pushed-down predicates; all must hold (AND semantics).
	Preds []ColPredicate
	// Slots optionally restricts the decode to the given page-local slot
	// numbers (strictly ascending). Nil means every slot.
	Slots []int
}

// DecodedPage is the batch a column-selective decode returns: the surviving
// rows (projected onto spec.Needed), the page-local slot each row came from,
// and the decode work performed.
type DecodedPage struct {
	Rows  []Row
	Slots []int
	// TuplesDecoded is the number of rows materialized (== len(Rows)).
	TuplesDecoded int64
	// ColumnsDecoded is the number of per-page column payloads the codec had
	// to run through value decoding (predicate columns and needed columns
	// count once each; columns decided from page metadata alone don't).
	ColumnsDecoded int64
}

// AllOrdinals returns [0, 1, ..., len(s.Columns)-1], the spec.Needed of a
// non-selective decode.
func (s *Schema) AllOrdinals() []int {
	out := make([]int, len(s.Columns))
	for i := range out {
		out[i] = i
	}
	return out
}

// FallbackDecodeColumns implements DecodeColumns on top of a full page
// decode, for codecs whose physical layout is row-major (NONE, ROW) and
// cannot skip columns. The slot filter and predicates are applied after the
// fact; the counters charge the full decode honestly (every row, every
// column), which is exactly what makes PAGE's selective decode visible in
// the I/O accounting.
func FallbackDecodeColumns(s *Schema, full []Row, spec *DecodeSpec) *DecodedPage {
	// A full decode materializes every row and touches every column payload
	// once per page.
	out := &DecodedPage{
		TuplesDecoded:  int64(len(full)),
		ColumnsDecoded: int64(len(s.Columns)),
	}
	si := 0
	for slot, r := range full {
		if spec.Slots != nil {
			for si < len(spec.Slots) && spec.Slots[si] < slot {
				si++
			}
			if si >= len(spec.Slots) || spec.Slots[si] != slot {
				continue
			}
		}
		ok := true
		for _, p := range spec.Preds {
			if !p.Matches(r[p.Col]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pr := make(Row, len(spec.Needed))
		for j, ci := range spec.Needed {
			pr[j] = r[ci]
		}
		out.Rows = append(out.Rows, pr)
		out.Slots = append(out.Slots, slot)
	}
	return out
}
