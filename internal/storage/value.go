// Package storage provides the low-level physical representation used by the
// simulated database engine: typed values, schemas, rows, a row codec and
// fixed-size slotted pages.
//
// The engine is deliberately simple but physically honest: index sizes are
// obtained by actually serializing rows into 8 KB pages, which is what makes
// compression fractions depend on value distributions and tuple order the way
// the paper's deduction theory (Section 4.2) assumes.
package storage

import (
	"fmt"
	"strings"
)

// Kind enumerates the column types supported by the engine.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer.
	KindInt Kind = iota
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a (possibly fixed-width) character column.
	KindString
	// KindDate is a date stored as days since 1970-01-01.
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed cell. The zero Value is a NULL of kind KindInt.
type Value struct {
	Kind  Kind
	Null  bool
	Int   int64 // used by KindInt and KindDate (days since epoch)
	Float float64
	Str   string
}

// NullValue returns a NULL of the given kind.
func NullValue(k Kind) Value { return Value{Kind: k, Null: true} }

// IntVal returns an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatVal returns a float value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// StringVal returns a string value.
func StringVal(v string) Value { return Value{Kind: KindString, Str: v} }

// DateVal returns a date value given days since the Unix epoch.
func DateVal(days int64) Value { return Value{Kind: KindDate, Int: days} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// Compare orders two values of the same kind. NULLs sort first.
// The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	switch v.Kind {
	case KindInt, KindDate:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.Float < o.Float:
			return -1
		case v.Float > o.Float:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.Str, o.Str)
	}
	return 0
}

// Equal reports whether two values compare equal (NULL == NULL here, which is
// the grouping semantics used by materialized views).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// CoerceTo converts the value to the given kind where a lossless-enough
// numeric conversion exists (int↔float↔date). Strings are never converted.
// Predicate literals parsed from SQL are coerced to the column kind before
// comparison.
func (v Value) CoerceTo(k Kind) Value {
	if v.Null {
		return NullValue(k)
	}
	if v.Kind == k {
		return v
	}
	switch k {
	case KindFloat:
		switch v.Kind {
		case KindInt, KindDate:
			return FloatVal(float64(v.Int))
		}
	case KindInt, KindDate:
		switch v.Kind {
		case KindInt, KindDate:
			return Value{Kind: k, Int: v.Int}
		case KindFloat:
			return Value{Kind: k, Int: int64(v.Float)}
		}
	}
	return v
}

// Key returns a comparable representation usable as a map key for grouping
// and dictionary construction.
func (v Value) Key() ValueKey {
	if v.Null {
		return ValueKey{Kind: v.Kind, Null: true}
	}
	switch v.Kind {
	case KindFloat:
		return ValueKey{Kind: v.Kind, Float: v.Float}
	case KindString:
		return ValueKey{Kind: v.Kind, Str: v.Str}
	default:
		return ValueKey{Kind: v.Kind, Int: v.Int}
	}
}

// ValueKey is a comparable projection of Value (usable as a map key).
type ValueKey struct {
	Kind  Kind
	Null  bool
	Int   int64
	Float float64
	Str   string
}

// String renders a value for debugging and plan output.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindDate:
		return fmt.Sprintf("DATE(%d)", v.Int)
	}
	return "?"
}

// Row is a tuple of values laid out in schema column order.
type Row []Value

// Clone returns a deep copy of the row (values are immutable, so a shallow
// copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// WithValue returns a copy of the row with column i replaced by v. The
// receiver is left untouched, so rows shared between a table and derived
// structures (samples, materialized indexes) stay consistent.
func (r Row) WithValue(i int, v Value) Row {
	out := r.Clone()
	out[i] = v
	return out
}
