package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The uncompressed row format mirrors a classic fixed-slot row store:
//
//	[null bitmap][col0][col1]...[colN]
//
// Fixed-width columns occupy their full width even when the value is short
// (CHAR(n) is blank-padded, integers take 8 bytes even for small magnitudes).
// That "waste" is exactly what ROW compression (null suppression) removes, so
// encoding honestly here is essential for realistic compression fractions.

// EncodedRowSize returns the number of bytes EncodeRow would produce.
func EncodedRowSize(s *Schema, r Row) int {
	n := (len(s.Columns) + 7) / 8
	for i, c := range s.Columns {
		if c.Kind == KindString && c.FixedWidth == 0 {
			n += 2
			if !r[i].Null {
				n += len(r[i].Str)
			}
			continue
		}
		n += c.Width()
	}
	return n
}

// EncodeRow appends the uncompressed encoding of r to dst and returns the
// extended slice. The row must match the schema.
func EncodeRow(s *Schema, r Row, dst []byte) []byte {
	if len(r) != len(s.Columns) {
		panic(fmt.Sprintf("storage: row arity %d != schema arity %d", len(r), len(s.Columns)))
	}
	bitmapLen := (len(s.Columns) + 7) / 8
	bitmapAt := len(dst)
	for i := 0; i < bitmapLen; i++ {
		dst = append(dst, 0)
	}
	var buf [8]byte
	for i, c := range s.Columns {
		v := r[i]
		if v.Null {
			dst[bitmapAt+i/8] |= 1 << (uint(i) % 8)
		}
		switch c.Kind {
		case KindInt, KindFloat:
			var u uint64
			if c.Kind == KindInt {
				u = uint64(v.Int)
			} else {
				u = floatBits(v.Float)
			}
			if v.Null {
				u = 0
			}
			binary.BigEndian.PutUint64(buf[:], u)
			dst = append(dst, buf[:8]...)
		case KindDate:
			u := uint32(v.Int)
			if v.Null {
				u = 0
			}
			binary.BigEndian.PutUint32(buf[:4], u)
			dst = append(dst, buf[:4]...)
		case KindString:
			if c.FixedWidth > 0 {
				// CHAR(n): blank padded, truncated if longer.
				str := ""
				if !v.Null {
					str = v.Str
				}
				if len(str) > c.FixedWidth {
					str = str[:c.FixedWidth]
				}
				dst = append(dst, str...)
				for j := len(str); j < c.FixedWidth; j++ {
					dst = append(dst, ' ')
				}
			} else {
				str := ""
				if !v.Null {
					str = v.Str
				}
				if len(str) > 0xFFFF {
					str = str[:0xFFFF]
				}
				binary.BigEndian.PutUint16(buf[:2], uint16(len(str)))
				dst = append(dst, buf[:2]...)
				dst = append(dst, str...)
			}
		}
	}
	return dst
}

// DecodeRow decodes one row from src, returning the row and the number of
// bytes consumed.
func DecodeRow(s *Schema, src []byte) (Row, int, error) {
	bitmapLen := (len(s.Columns) + 7) / 8
	if len(src) < bitmapLen {
		return nil, 0, fmt.Errorf("storage: short row: %d bytes", len(src))
	}
	bitmap := src[:bitmapLen]
	pos := bitmapLen
	row := make(Row, len(s.Columns))
	for i, c := range s.Columns {
		null := bitmap[i/8]&(1<<(uint(i)%8)) != 0
		switch c.Kind {
		case KindInt, KindFloat:
			if len(src) < pos+8 {
				return nil, 0, fmt.Errorf("storage: short row at col %d", i)
			}
			u := binary.BigEndian.Uint64(src[pos : pos+8])
			pos += 8
			if c.Kind == KindInt {
				row[i] = Value{Kind: KindInt, Int: int64(u), Null: null}
			} else {
				row[i] = Value{Kind: KindFloat, Float: floatFromBits(u), Null: null}
			}
		case KindDate:
			if len(src) < pos+4 {
				return nil, 0, fmt.Errorf("storage: short row at col %d", i)
			}
			u := binary.BigEndian.Uint32(src[pos : pos+4])
			pos += 4
			row[i] = Value{Kind: KindDate, Int: int64(int32(u)), Null: null}
		case KindString:
			if c.FixedWidth > 0 {
				if len(src) < pos+c.FixedWidth {
					return nil, 0, fmt.Errorf("storage: short row at col %d", i)
				}
				raw := src[pos : pos+c.FixedWidth]
				pos += c.FixedWidth
				// Strip the CHAR(n) blank padding on decode.
				end := len(raw)
				for end > 0 && raw[end-1] == ' ' {
					end--
				}
				row[i] = Value{Kind: KindString, Str: string(raw[:end]), Null: null}
			} else {
				if len(src) < pos+2 {
					return nil, 0, fmt.Errorf("storage: short row at col %d", i)
				}
				n := int(binary.BigEndian.Uint16(src[pos : pos+2]))
				pos += 2
				if len(src) < pos+n {
					return nil, 0, fmt.Errorf("storage: short row at col %d", i)
				}
				row[i] = Value{Kind: KindString, Str: string(src[pos : pos+n]), Null: null}
				pos += n
			}
		}
		if null {
			row[i] = NullValue(c.Kind)
		}
	}
	return row, pos, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
