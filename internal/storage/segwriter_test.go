package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cadb/internal/bufferpool"
)

// TestSegmentWriterMatchesBuildSegment streams rows through the chunked
// writer in awkward batch sizes and checks the resulting file is
// byte-identical to WriteSegmentFile over a whole-slice BuildSegment — the
// property that makes out-of-core builds interchangeable with in-memory
// ones.
func TestSegmentWriterMatchesBuildSegment(t *testing.T) {
	s, rows, seg := testSegment(t, 3000)
	dir := t.TempDir()
	wholePath := filepath.Join(dir, "whole.cadb")
	sf, err := WriteSegmentFile(wholePath, seg)
	if err != nil {
		t.Fatal(err)
	}
	sf.Close()

	for _, chunk := range []int{1, 7, 64, 501, 3000} {
		chunkPath := filepath.Join(dir, "chunked.cadb")
		w, err := NewSegmentWriter(chunkPath, s, plainCodec{})
		if err != nil {
			t.Fatal(err)
		}
		for at := 0; at < len(rows); at += chunk {
			end := at + chunk
			if end > len(rows) {
				end = len(rows)
			}
			if err := w.Append(rows[at:end]); err != nil {
				t.Fatal(err)
			}
		}
		pool := bufferpool.New(1 << 20)
		cseg, err := w.Finish(pool)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := os.ReadFile(wholePath)
		if err != nil {
			t.Fatal(err)
		}
		chunked, err := os.ReadFile(chunkPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(whole, chunked) {
			t.Fatalf("chunk size %d: chunked file differs from whole-slice file (%d vs %d bytes)",
				chunk, len(chunked), len(whole))
		}
		if cseg.Rows() != seg.Rows() || cseg.NumPages() != seg.NumPages() ||
			cseg.DiskBytes() != seg.DiskBytes() || cseg.PayloadBytes() != seg.PayloadBytes() {
			t.Fatalf("chunk size %d: segment metadata differs", chunk)
		}
		// The returned segment must serve pages through the pool.
		got, err := cseg.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rows) || got[0][0].Int != rows[0][0].Int {
			t.Fatalf("chunk size %d: scan through pool wrong", chunk)
		}
		if pool.Stats().Misses == 0 {
			t.Fatalf("chunk size %d: scan did not go through the pool", chunk)
		}
		// No spool left behind.
		if _, err := os.Stat(chunkPath + ".spool"); !os.IsNotExist(err) {
			t.Fatalf("chunk size %d: spool file left behind", chunk)
		}
		cseg.CloseBacking()
	}
}

// TestSegmentWriterBoundedMemory checks the writer retains at most a tail
// page of rows between Appends.
func TestSegmentWriterBoundedMemory(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString, FixedWidth: 40},
		Column{Name: "val", Kind: KindFloat},
	)
	w, err := NewSegmentWriter(filepath.Join(t.TempDir(), "seg.cadb"), s, plainCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	batch := make([]Row, 512)
	for i := range batch {
		batch[i] = Row{IntVal(int64(i)), StringVal("row-padding-padding-padding"), FloatVal(1.5)}
	}
	rowsPerPage := 0
	for i := 0; i < 20; i++ {
		if err := w.Append(batch); err != nil {
			t.Fatal(err)
		}
		if rowsPerPage == 0 && len(w.pages) > 0 {
			rowsPerPage = w.pages[0].Rows
		}
		if rowsPerPage > 0 && len(w.pending) > rowsPerPage {
			t.Fatalf("after append %d: %d rows pending, page holds %d", i, len(w.pending), rowsPerPage)
		}
	}
	if w.Rows() != 20*512 {
		t.Fatalf("Rows() = %d", w.Rows())
	}
}

// TestPrefetcherWarmsScan runs readahead over a spilled segment and checks a
// following serial scan sees hits for prefetched pages, with the prefetch
// accounted in PoolPrefetched/BytesRead and no stale or wrong bytes.
func TestPrefetcherWarmsScan(t *testing.T) {
	_, rows, seg := testSegment(t, 2000)
	pool := bufferpool.New(1 << 20) // everything fits
	if err := seg.Spill(filepath.Join(t.TempDir(), "seg.cadb"), pool); err != nil {
		t.Fatal(err)
	}
	var io IOStats
	pf := StartPrefetch(seg, 0, seg.NumPages(), 4, 2)
	if pf == nil {
		t.Fatal("prefetcher should start for a backed segment")
	}
	// Drive the readahead to completion before scanning so the outcome is
	// deterministic: every page becomes resident via prefetch alone (in
	// production the scan races the workers and splits between hit and miss).
	for pool.Bytes() < seg.DiskBytes() {
		for i := 0; i < seg.NumPages(); i++ {
			pf.Advance(i)
		}
		time.Sleep(time.Millisecond)
	}
	var got []Row
	for i := 0; i < seg.NumPages(); i++ {
		payload, release, err := seg.FetchPage(i, &io)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := seg.Codec.DecodePage(seg.Schema, payload, seg.PageRows(i))
		release()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	pf.Close(&io)
	if len(got) != len(rows) {
		t.Fatalf("scan with prefetch returned %d rows, want %d", len(got), len(rows))
	}
	for i := range got {
		if got[i][0].Int != rows[i][0].Int {
			t.Fatalf("row %d differs under prefetch", i)
		}
	}
	if io.PoolPrefetched != int64(seg.NumPages()) {
		t.Fatalf("prefetched %d pages, want all %d", io.PoolPrefetched, seg.NumPages())
	}
	if io.PoolHits != int64(seg.NumPages()) || io.PoolMisses != 0 {
		t.Fatalf("scan after full readahead: %d hits %d misses, want %d/0",
			io.PoolHits, io.PoolMisses, seg.NumPages())
	}
	// Every byte was read exactly once, whether by miss or prefetch.
	if io.BytesRead != seg.DiskBytes() {
		t.Fatalf("read %d bytes, want %d", io.BytesRead, seg.DiskBytes())
	}
	seg.CloseBacking()
}

// TestPrefetchRacesCloseBacking closes the backing while prefetch workers
// are mid-flight; nothing stale may remain in the pool and the prefetcher
// must drain cleanly.
func TestPrefetchRacesCloseBacking(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		_, _, seg := testSegment(t, 2000)
		pool := bufferpool.New(1 << 20)
		if err := seg.Spill(filepath.Join(t.TempDir(), "seg.cadb"), pool); err != nil {
			t.Fatal(err)
		}
		pf := StartPrefetch(seg, 0, seg.NumPages(), 8, 3)
		pf.Advance(0)
		seg.CloseBacking()
		pf.Advance(4) // advancing after close must be harmless
		pf.Close(nil)
		if pool.Bytes() != 0 {
			t.Fatalf("iter %d: %d stale bytes resident after CloseBacking", iter, pool.Bytes())
		}
		if _, _, err := seg.FetchPage(0, nil); err == nil {
			t.Fatalf("iter %d: fetch after CloseBacking succeeded", iter)
		}
	}
}

// TestPrefetchDisabledCases pins the no-op paths: nil segment, in-memory
// segment, zero window or workers.
func TestPrefetchDisabledCases(t *testing.T) {
	_, _, seg := testSegment(t, 100)
	if pf := StartPrefetch(nil, 0, 1, 4, 2); pf != nil {
		t.Fatal("nil segment should not start a prefetcher")
	}
	if pf := StartPrefetch(seg, 0, seg.NumPages(), 4, 2); pf != nil {
		t.Fatal("in-memory segment should not start a prefetcher")
	}
	pool := bufferpool.New(1 << 20)
	if err := seg.Spill(filepath.Join(t.TempDir(), "seg.cadb"), pool); err != nil {
		t.Fatal(err)
	}
	if pf := StartPrefetch(seg, 0, seg.NumPages(), 0, 2); pf != nil {
		t.Fatal("zero window should disable prefetch")
	}
	if pf := StartPrefetch(seg, 0, seg.NumPages(), 4, 0); pf != nil {
		t.Fatal("zero workers should disable prefetch")
	}
	var nilPF *Prefetcher
	nilPF.Advance(0) // nil receiver is a no-op
	nilPF.Close(nil)
	seg.CloseBacking()
}
