package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// SegmentFile is the on-disk form of a Segment: a header carrying the codec
// method, page count and row count, a per-page directory (payload offset,
// length, row count, accounted bytes, CRC32), a header checksum, and then
// the raw page payloads. Pages are read back individually via ReadAt, so a
// buffer pool can fault in exactly the pages a query touches.
//
// Version 1 layout (all integers big-endian):
//
//	[0:8)    magic "CADBSEG1"
//	[8:12)   format version (1)
//	[12:16)  codec name length L
//	[16:16+L codec name
//	+0:4     page count N
//	+4:12    row count
//	then N directory entries of 24 bytes each:
//	         offset u64 | length u32 | rows u32 | accounted u32 | crc32 u32
//	+4       CRC32 (IEEE) of everything before it
//	then the page payloads at their directory offsets.
//
// Version 2 ("CADBSEG2", written for stateful codecs — GDICT, RLE and mixed
// per-column designs) inserts two blocks between the codec name and the page
// count:
//
//	u16 column count; per column: u8 name length | name | u8 method
//	u32 state length | codec state block (the global dictionaries)
//
// Everything else — directory, checksums, payload placement — is identical,
// and OpenSegmentFile keeps reading version 1 files unchanged.
type SegmentFile struct {
	f         *os.File
	path      string
	codecName string
	rows      int64
	entries   []segPageEntry
	design    []SegColumnMethod // per-column method vector (v2 only)
	state     []byte            // codec state block (v2 only)
}

// SegColumnMethod is one entry of a CADBSEG2 design vector: a column name and
// its compression-method byte (the compress.Method value).
type SegColumnMethod struct {
	Name   string
	Method byte
}

type segPageEntry struct {
	offset    uint64
	length    uint32
	rows      uint32
	accounted uint32
	crc       uint32
}

var (
	segMagic  = [8]byte{'C', 'A', 'D', 'B', 'S', 'E', 'G', '1'}
	segMagic2 = [8]byte{'C', 'A', 'D', 'B', 'S', 'E', 'G', '2'}
)

const (
	segFileVersion  = 1
	segFileVersion2 = 2
)

// segDesign extracts the design vector and state block a segment file must
// record for its codec: nil for stateless codecs (written as version 1).
func segDesign(c PageCodec, s *Schema) ([]SegColumnMethod, []byte) {
	sc, ok := c.(StatefulCodec)
	if !ok {
		return nil, nil
	}
	ids := sc.ColumnMethodIDs(s)
	design := make([]SegColumnMethod, len(s.Columns))
	for i, col := range s.Columns {
		design[i] = SegColumnMethod{Name: col.Name, Method: ids[i]}
	}
	return design, sc.SegmentState()
}

// segHeaderPrefix assembles the header bytes that precede the page directory:
// version 1 when design is nil, version 2 otherwise.
func segHeaderPrefix(name string, design []SegColumnMethod, state []byte, pageCount int, rows int64) ([]byte, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("storage: codec name %q too long", name)
	}
	var h []byte
	if design == nil {
		h = append(h, segMagic[:]...)
		h = binary.BigEndian.AppendUint32(h, segFileVersion)
		h = binary.BigEndian.AppendUint32(h, uint32(len(name)))
		h = append(h, name...)
	} else {
		if len(design) > 0xFFFF {
			return nil, fmt.Errorf("storage: design vector of %d columns", len(design))
		}
		h = append(h, segMagic2[:]...)
		h = binary.BigEndian.AppendUint32(h, segFileVersion2)
		h = binary.BigEndian.AppendUint32(h, uint32(len(name)))
		h = append(h, name...)
		h = binary.BigEndian.AppendUint16(h, uint16(len(design)))
		for _, cm := range design {
			if len(cm.Name) > 255 {
				return nil, fmt.Errorf("storage: column name %q too long", cm.Name)
			}
			h = append(h, byte(len(cm.Name)))
			h = append(h, cm.Name...)
			h = append(h, cm.Method)
		}
		h = binary.BigEndian.AppendUint32(h, uint32(len(state)))
		h = append(h, state...)
	}
	h = binary.BigEndian.AppendUint32(h, uint32(pageCount))
	h = binary.BigEndian.AppendUint64(h, uint64(rows))
	return h, nil
}

// WriteSegmentFile writes the segment's pages to path (truncating any
// previous file) and returns an open handle for reads. The segment must
// still hold its payloads (i.e. not already be spilled).
func WriteSegmentFile(path string, seg *Segment) (*SegmentFile, error) {
	name := seg.Codec.Name()
	design, state := segDesign(seg.Codec, seg.Schema)
	prefix, err := segHeaderPrefix(name, design, state, len(seg.pages), seg.rows)
	if err != nil {
		return nil, err
	}
	headerLen := len(prefix) + 24*len(seg.pages) + 4
	header := make([]byte, 0, headerLen)
	header = append(header, prefix...)

	entries := make([]segPageEntry, len(seg.pages))
	at := uint64(headerLen)
	for i := range seg.pages {
		p := &seg.pages[i]
		if p.Payload == nil && p.Rows > 0 {
			return nil, fmt.Errorf("storage: page %d has no payload (segment already spilled?)", i)
		}
		entries[i] = segPageEntry{
			offset:    at,
			length:    uint32(len(p.Payload)),
			rows:      uint32(p.Rows),
			accounted: uint32(p.AccountedBytes),
			crc:       crc32.ChecksumIEEE(p.Payload),
		}
		at += uint64(len(p.Payload))
		header = binary.BigEndian.AppendUint64(header, entries[i].offset)
		header = binary.BigEndian.AppendUint32(header, entries[i].length)
		header = binary.BigEndian.AppendUint32(header, entries[i].rows)
		header = binary.BigEndian.AppendUint32(header, entries[i].accounted)
		header = binary.BigEndian.AppendUint32(header, entries[i].crc)
	}
	header = binary.BigEndian.AppendUint32(header, crc32.ChecksumIEEE(header))
	if len(header) != headerLen {
		return nil, fmt.Errorf("storage: header length %d, computed %d", len(header), headerLen)
	}

	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		_ = f.Close() // best-effort cleanup; the write error is the story
		return nil, err
	}
	for i := range seg.pages {
		if _, err := f.Write(seg.pages[i].Payload); err != nil {
			_ = f.Close() // best-effort cleanup; the write error is the story
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // best-effort cleanup; the sync error is the story
		return nil, err
	}
	adviseRandom(f)
	return &SegmentFile{f: f, path: path, codecName: name, rows: seg.rows, entries: entries, design: design, state: state}, nil
}

// OpenSegmentFile opens an existing segment file, validating the header
// checksum.
func OpenSegmentFile(path string) (*SegmentFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sf, err := readSegHeader(f, path)
	if err != nil {
		_ = f.Close() // best-effort cleanup; the header error is the story
		return nil, err
	}
	adviseRandom(f)
	return sf, nil
}

func readSegHeader(f *os.File, path string) (*SegmentFile, error) {
	fixed := make([]byte, 16)
	if _, err := f.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("storage: %s: short header: %w", path, err)
	}
	switch [8]byte(fixed[:8]) {
	case segMagic:
		if v := binary.BigEndian.Uint32(fixed[8:12]); v != segFileVersion {
			return nil, fmt.Errorf("storage: %s: unsupported version %d", path, v)
		}
	case segMagic2:
		if v := binary.BigEndian.Uint32(fixed[8:12]); v != segFileVersion2 {
			return nil, fmt.Errorf("storage: %s: unsupported version %d", path, v)
		}
		return readSegHeaderV2(f, path, fixed)
	default:
		return nil, fmt.Errorf("storage: %s: bad magic", path)
	}
	nameLen := int(binary.BigEndian.Uint32(fixed[12:16]))
	if nameLen > 255 {
		return nil, fmt.Errorf("storage: %s: codec name length %d", path, nameLen)
	}
	rest := make([]byte, nameLen+4+8)
	if _, err := f.ReadAt(rest, 16); err != nil {
		return nil, fmt.Errorf("storage: %s: short header: %w", path, err)
	}
	name := string(rest[:nameLen])
	n := int(binary.BigEndian.Uint32(rest[nameLen : nameLen+4]))
	rows := int64(binary.BigEndian.Uint64(rest[nameLen+4:]))
	dirAt := int64(16 + nameLen + 4 + 8)
	dir := make([]byte, 24*n+4)
	if _, err := f.ReadAt(dir, dirAt); err != nil {
		return nil, fmt.Errorf("storage: %s: short directory: %w", path, err)
	}
	// Verify the header CRC over [0, dirAt+24n).
	full := make([]byte, dirAt+int64(24*n))
	copy(full, fixed)
	copy(full[16:], rest)
	copy(full[dirAt:], dir[:24*n])
	wantCRC := binary.BigEndian.Uint32(dir[24*n:])
	if got := crc32.ChecksumIEEE(full); got != wantCRC {
		return nil, fmt.Errorf("storage: %s: header checksum mismatch", path)
	}
	entries, err := parseSegDir(dir, n)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	return &SegmentFile{f: f, path: path, codecName: name, rows: rows, entries: entries}, nil
}

// readSegHeaderV2 parses a CADBSEG2 header. The variable-length design and
// state blocks force incremental reads; every byte read is accumulated so
// the trailing CRC covers the whole header, exactly like version 1.
func readSegHeaderV2(f *os.File, path string, fixed []byte) (*SegmentFile, error) {
	hdr := append([]byte(nil), fixed...)
	at := int64(len(fixed))
	read := func(n int) ([]byte, error) {
		buf := make([]byte, n)
		if n > 0 {
			if _, err := f.ReadAt(buf, at); err != nil {
				return nil, fmt.Errorf("storage: %s: short header: %w", path, err)
			}
		}
		at += int64(n)
		hdr = append(hdr, buf...)
		return buf, nil
	}
	nameLen := int(binary.BigEndian.Uint32(fixed[12:16]))
	if nameLen > 255 {
		return nil, fmt.Errorf("storage: %s: codec name length %d", path, nameLen)
	}
	b, err := read(nameLen + 2)
	if err != nil {
		return nil, err
	}
	name := string(b[:nameLen])
	colCount := int(binary.BigEndian.Uint16(b[nameLen:]))
	design := make([]SegColumnMethod, colCount)
	for i := range design {
		lb, err := read(1)
		if err != nil {
			return nil, err
		}
		nb, err := read(int(lb[0]) + 1)
		if err != nil {
			return nil, err
		}
		design[i] = SegColumnMethod{Name: string(nb[:len(nb)-1]), Method: nb[len(nb)-1]}
	}
	sb, err := read(4)
	if err != nil {
		return nil, err
	}
	stateLen := int(binary.BigEndian.Uint32(sb))
	if stateLen > 1<<30 {
		return nil, fmt.Errorf("storage: %s: state block of %d bytes", path, stateLen)
	}
	state, err := read(stateLen)
	if err != nil {
		return nil, err
	}
	cb, err := read(4 + 8)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(cb[:4]))
	rows := int64(binary.BigEndian.Uint64(cb[4:]))
	dir := make([]byte, 24*n+4)
	if _, err := f.ReadAt(dir, at); err != nil {
		return nil, fmt.Errorf("storage: %s: short directory: %w", path, err)
	}
	hdr = append(hdr, dir[:24*n]...)
	wantCRC := binary.BigEndian.Uint32(dir[24*n:])
	if got := crc32.ChecksumIEEE(hdr); got != wantCRC {
		return nil, fmt.Errorf("storage: %s: header checksum mismatch", path)
	}
	entries, err := parseSegDir(dir, n)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	if stateLen == 0 {
		state = nil
	}
	return &SegmentFile{f: f, path: path, codecName: name, rows: rows, entries: entries, design: design, state: state}, nil
}

// parseSegDir decodes n 24-byte directory entries.
func parseSegDir(dir []byte, n int) ([]segPageEntry, error) {
	if len(dir) < 24*n {
		return nil, fmt.Errorf("short directory")
	}
	entries := make([]segPageEntry, n)
	for i := 0; i < n; i++ {
		e := dir[24*i:]
		entries[i] = segPageEntry{
			offset:    binary.BigEndian.Uint64(e[0:8]),
			length:    binary.BigEndian.Uint32(e[8:12]),
			rows:      binary.BigEndian.Uint32(e[12:16]),
			accounted: binary.BigEndian.Uint32(e[16:20]),
			crc:       binary.BigEndian.Uint32(e[20:24]),
		}
	}
	return entries, nil
}

// NumPages returns the page count.
func (sf *SegmentFile) NumPages() int { return len(sf.entries) }

// Rows returns the total row count.
func (sf *SegmentFile) Rows() int64 { return sf.rows }

// CodecName returns the codec method name recorded in the header.
func (sf *SegmentFile) CodecName() string { return sf.codecName }

// Design returns the per-column method vector recorded in a CADBSEG2 header
// (nil for version-1 files).
func (sf *SegmentFile) Design() []SegColumnMethod { return sf.design }

// State returns the codec state block recorded in a CADBSEG2 header (nil for
// version-1 files and stateless designs). Feed it to the codec's
// LoadSegmentState to decode the file's pages in a fresh process.
func (sf *SegmentFile) State() []byte { return sf.state }

// Path returns the file path.
func (sf *SegmentFile) Path() string { return sf.path }

// PageRows returns the row count of page i without reading it.
func (sf *SegmentFile) PageRows(i int) int { return int(sf.entries[i].rows) }

// PageAccountedBytes returns the accounted payload size of page i.
func (sf *SegmentFile) PageAccountedBytes(i int) int { return int(sf.entries[i].accounted) }

// PayloadBytes returns the total on-disk payload bytes across all pages —
// the working-set size a buffer pool is dimensioned against.
func (sf *SegmentFile) PayloadBytes() int64 {
	var n int64
	for i := range sf.entries {
		n += int64(sf.entries[i].length)
	}
	return n
}

// ReadPage reads page i's payload via ReadAt and verifies its checksum.
func (sf *SegmentFile) ReadPage(i int) ([]byte, error) {
	if i < 0 || i >= len(sf.entries) {
		return nil, fmt.Errorf("storage: %s: page %d of %d", sf.path, i, len(sf.entries))
	}
	e := sf.entries[i]
	buf := make([]byte, e.length)
	if e.length > 0 {
		if _, err := sf.f.ReadAt(buf, int64(e.offset)); err != nil {
			return nil, fmt.Errorf("storage: %s: page %d: %w", sf.path, i, err)
		}
	}
	if got := crc32.ChecksumIEEE(buf); got != e.crc {
		return nil, fmt.Errorf("storage: %s: page %d: checksum mismatch", sf.path, i)
	}
	return buf, nil
}

// ReadPageSpan reads pages [lo, hi) in one ReadAt over their contiguous file
// range and returns the per-page payloads, each checksum-verified and copied
// out of the span buffer (so a buffer pool admitting individual pages never
// retains the whole span). Page payloads are laid out back to back by the
// writers, which is what makes the single large read possible — coalescing is
// the point: one span read runs at sequential-disk bandwidth where hi-lo
// individual page reads would each pay a seek-sized latency.
func (sf *SegmentFile) ReadPageSpan(lo, hi int) ([][]byte, error) {
	if lo < 0 || hi > len(sf.entries) || lo >= hi {
		return nil, fmt.Errorf("storage: %s: page span [%d,%d) of %d", sf.path, lo, hi, len(sf.entries))
	}
	first, last := sf.entries[lo], sf.entries[hi-1]
	start := first.offset
	end := last.offset + uint64(last.length)
	buf := make([]byte, end-start)
	if len(buf) > 0 {
		if _, err := sf.f.ReadAt(buf, int64(start)); err != nil {
			return nil, fmt.Errorf("storage: %s: pages [%d,%d): %w", sf.path, lo, hi, err)
		}
	}
	out := make([][]byte, hi-lo)
	for i := lo; i < hi; i++ {
		e := sf.entries[i]
		rel := e.offset - start
		page := buf[rel : rel+uint64(e.length)]
		if got := crc32.ChecksumIEEE(page); got != e.crc {
			return nil, fmt.Errorf("storage: %s: page %d: checksum mismatch", sf.path, i)
		}
		out[i-lo] = append([]byte(nil), page...)
	}
	return out, nil
}

// Close closes the underlying file.
func (sf *SegmentFile) Close() error { return sf.f.Close() }

// Remove closes and deletes the file.
func (sf *SegmentFile) Remove() error {
	err := sf.f.Close()
	if rmErr := os.Remove(sf.path); err == nil {
		err = rmErr
	}
	return err
}
