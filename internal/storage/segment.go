package storage

import "fmt"

// PageCodec turns rows into physical page payloads and back. Implementations
// live in internal/compress (one per materializable compression method); the
// codec owns the packing policy so order-dependent methods can mirror the
// grouping their size model assumes.
type PageCodec interface {
	// Name is the method name ("NONE", "ROW", "PAGE").
	Name() string
	// EncodeRows packs the rows into page payloads. Each payload must be
	// decodable by DecodePage on its own.
	EncodeRows(s *Schema, rows []Row) ([]EncodedPage, error)
	// DecodePage reconstructs the rows of one page payload.
	DecodePage(s *Schema, payload []byte, nrows int) ([]Row, error)
	// DecodeColumns reconstructs only the spec.Needed columns of the rows
	// that satisfy spec's predicates and slot filter. Codecs without a
	// column-selective layout fall back to a full decode internally (see
	// FallbackDecodeColumns) so the interface stays uniform; the returned
	// counters report the work actually done.
	DecodeColumns(s *Schema, payload []byte, nrows int, spec *DecodeSpec) (*DecodedPage, error)
}

// EncodedPage is one materialized page: the real payload bytes plus the
// slot-array accounting the size model charges per row.
type EncodedPage struct {
	// Payload is the encoded page body. It is at most UsablePageBytes except
	// for an overflow run holding a single oversized row.
	Payload []byte
	// Rows is the number of rows encoded in the payload.
	Rows int
	// AccountedBytes is payload plus per-row slot overhead — the number the
	// size model (compress.SizeRows) is diffed against.
	AccountedBytes int
}

// PhysicalPages returns the number of fixed-size pages the payload occupies
// (usually 1; more for an overflow run).
func (p *EncodedPage) PhysicalPages() int64 {
	n := PagesForBytes(int64(p.AccountedBytes))
	if n < 1 {
		n = 1
	}
	return n
}

// Segment is a materialized page store: rows encoded into real pages by a
// codec. Segments are immutable once built; decoding a page reproduces the
// original rows (up to the codec's documented CHAR(n) normalization).
type Segment struct {
	Schema *Schema
	Codec  PageCodec

	pages        []EncodedPage
	starts       []int64 // starts[i] is the row offset of page i's first row
	rows         int64
	payloadBytes int64
	physPages    int64
}

// BuildSegment encodes the rows into a segment using the codec.
func BuildSegment(s *Schema, rows []Row, c PageCodec) (*Segment, error) {
	if c == nil {
		return nil, fmt.Errorf("storage: nil page codec")
	}
	pages, err := c.EncodeRows(s, rows)
	if err != nil {
		return nil, err
	}
	seg := &Segment{Schema: s, Codec: c, pages: pages}
	seg.starts = make([]int64, len(pages)+1)
	for i := range pages {
		seg.starts[i+1] = seg.starts[i] + int64(pages[i].Rows)
		seg.rows += int64(pages[i].Rows)
		seg.payloadBytes += int64(pages[i].AccountedBytes)
		seg.physPages += pages[i].PhysicalPages()
	}
	if seg.rows != int64(len(rows)) {
		return nil, fmt.Errorf("storage: codec %s encoded %d of %d rows", c.Name(), seg.rows, len(rows))
	}
	return seg, nil
}

// NumPages returns the number of encoded pages (overflow runs count once).
func (g *Segment) NumPages() int { return len(g.pages) }

// PhysicalPages returns the total fixed-size page count, the number page-read
// accounting and SizePages estimates are diffed against.
func (g *Segment) PhysicalPages() int64 { return g.physPages }

// Rows returns the total row count.
func (g *Segment) Rows() int64 { return g.rows }

// PayloadBytes returns the accounted payload size (encoded bytes plus slot
// overhead), comparable to compress.SizeRows.
func (g *Segment) PayloadBytes() int64 { return g.payloadBytes }

// Page returns the i-th encoded page.
func (g *Segment) Page(i int) *EncodedPage { return &g.pages[i] }

// PageRows returns the row count of page i without decoding it.
func (g *Segment) PageRows(i int) int { return g.pages[i].Rows }

// PageStartRow returns the row offset (RID within the segment) of page i's
// first row. PageStartRow(NumPages()) is the total row count.
func (g *Segment) PageStartRow(i int) int64 { return g.starts[i] }

// PageForRow returns the page holding the given row offset, or -1 when the
// offset is out of range.
func (g *Segment) PageForRow(rid int64) int {
	if rid < 0 || rid >= g.rows {
		return -1
	}
	// Binary search the page whose [start, start+rows) range covers rid.
	lo, hi := 0, len(g.pages)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.starts[mid+1] > rid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DecodePage decodes page i back into rows.
func (g *Segment) DecodePage(i int) ([]Row, error) {
	p := &g.pages[i]
	return g.Codec.DecodePage(g.Schema, p.Payload, p.Rows)
}

// DecodeColumnsPage runs a column-selective decode of page i.
func (g *Segment) DecodeColumnsPage(i int, spec *DecodeSpec) (*DecodedPage, error) {
	p := &g.pages[i]
	return g.Codec.DecodeColumns(g.Schema, p.Payload, p.Rows, spec)
}

// ScanAll decodes every page in order — the full-scan access path without
// accounting (callers that need PageReads counters decode page by page).
func (g *Segment) ScanAll() ([]Row, error) {
	out := make([]Row, 0, g.rows)
	for i := range g.pages {
		rows, err := g.DecodePage(i)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}
