package storage

import (
	"fmt"
	"sync/atomic"

	"cadb/internal/bufferpool"
)

// PageCodec turns rows into physical page payloads and back. Implementations
// live in internal/compress (one per materializable compression method, plus
// the per-column design codec behind GDICT/RLE/mixed designs); the codec owns
// the packing policy so order-dependent methods can mirror the grouping their
// size model assumes.
type PageCodec interface {
	// Name is the method name ("NONE", "ROW", "PAGE", "GDICT", "RLE") or
	// "MIXED" for a per-column design.
	Name() string
	// EncodeRows packs the rows into page payloads. Each payload must be
	// decodable by DecodePage on its own.
	EncodeRows(s *Schema, rows []Row) ([]EncodedPage, error)
	// DecodePage reconstructs the rows of one page payload.
	DecodePage(s *Schema, payload []byte, nrows int) ([]Row, error)
	// DecodeColumns reconstructs only the spec.Needed columns of the rows
	// that satisfy spec's predicates and slot filter. Codecs without a
	// column-selective layout fall back to a full decode internally (see
	// FallbackDecodeColumns) so the interface stays uniform; the returned
	// counters report the work actually done.
	DecodeColumns(s *Schema, payload []byte, nrows int, spec *DecodeSpec) (*DecodedPage, error)
}

// SegmentPreparer is an optional PageCodec extension: a pre-pass over the
// full row set before encoding begins. BuildSegment calls it automatically,
// so a codec can make segment-scoped decisions (e.g. building a global
// dictionary and electing per-column fallbacks) from complete information.
// The streaming SegmentWriter never has the full row set and therefore never
// prepares; codecs must stay correct — just possibly less optimal — without
// the pre-pass.
type SegmentPreparer interface {
	PrepareSegment(s *Schema, rows []Row) error
}

// StatefulCodec is an optional PageCodec extension for codecs carrying
// segment-level state that pages alone cannot reproduce (e.g. a global
// dictionary). Segments built with a stateful codec are written in the
// CADBSEG2 format, which records the per-column method vector and the state
// block; LoadSegmentState rebuilds a fresh codec instance from that block so
// a segment file opened in another process can be decoded.
type StatefulCodec interface {
	// SegmentState serializes the codec's segment-level state (nil when the
	// design has none to record).
	SegmentState() []byte
	// LoadSegmentState rebuilds the state serialized by SegmentState.
	LoadSegmentState(s *Schema, state []byte) error
	// ColumnMethodIDs returns one compression-method byte per schema column —
	// the design vector recorded in the CADBSEG2 header.
	ColumnMethodIDs(s *Schema) []byte
}

// EncodedPage is one materialized page: the real payload bytes plus the
// slot-array accounting the size model charges per row.
type EncodedPage struct {
	// Payload is the encoded page body. It is at most UsablePageBytes except
	// for an overflow run holding a single oversized row.
	Payload []byte
	// Rows is the number of rows encoded in the payload.
	Rows int
	// AccountedBytes is payload plus per-row slot overhead — the number the
	// size model (compress.SizeRows) is diffed against.
	AccountedBytes int
}

// PhysicalPages returns the number of fixed-size pages the payload occupies
// (usually 1; more for an overflow run).
func (p *EncodedPage) PhysicalPages() int64 {
	n := PagesForBytes(int64(p.AccountedBytes))
	if n < 1 {
		n = 1
	}
	return n
}

// Segment is a materialized page store: rows encoded into real pages by a
// codec. Segments are immutable once built; decoding a page reproduces the
// original rows (up to the codec's documented CHAR(n) normalization).
type Segment struct {
	Schema *Schema
	Codec  PageCodec

	pages        []EncodedPage
	starts       []int64 // starts[i] is the row offset of page i's first row
	rows         int64
	payloadBytes int64
	physPages    int64
	diskBytes    int64 // raw payload bytes (what a SegmentFile stores)
	stateBytes   int64 // serialized codec state (global dictionaries)

	// backing, when set, serves page payloads from disk through a buffer
	// pool instead of memory (see Spill).
	backing *segBacking
}

// segBacking is the disk-backed payload source of a spilled segment. closed
// is atomic because cursor goroutines (scans, prefetch workers) check it
// while a writer may be closing the backing: the flag flips before the pool
// frames are invalidated and the file removed, so any load that slips past
// the check is poisoned by InvalidateFile or fails on the closed fd — stale
// bytes can never be admitted.
type segBacking struct {
	file   *SegmentFile
	pool   *bufferpool.Pool
	fileID uint64
	closed atomic.Bool
}

// BuildSegment encodes the rows into a segment using the codec. Codecs that
// implement SegmentPreparer get a pre-pass over the full row set first;
// codecs that implement StatefulCodec have their serialized state charged
// into PayloadBytes (the state travels in the segment file header, so it is
// real bytes the size model must see, but not pool working set).
func BuildSegment(s *Schema, rows []Row, c PageCodec) (*Segment, error) {
	if c == nil {
		return nil, fmt.Errorf("storage: nil page codec")
	}
	if p, ok := c.(SegmentPreparer); ok && len(rows) > 0 {
		if err := p.PrepareSegment(s, rows); err != nil {
			return nil, err
		}
	}
	pages, err := c.EncodeRows(s, rows)
	if err != nil {
		return nil, err
	}
	seg := &Segment{Schema: s, Codec: c, pages: pages}
	seg.starts = make([]int64, len(pages)+1)
	for i := range pages {
		seg.starts[i+1] = seg.starts[i] + int64(pages[i].Rows)
		seg.rows += int64(pages[i].Rows)
		seg.payloadBytes += int64(pages[i].AccountedBytes)
		seg.physPages += pages[i].PhysicalPages()
		seg.diskBytes += int64(len(pages[i].Payload))
	}
	if seg.rows != int64(len(rows)) {
		return nil, fmt.Errorf("storage: codec %s encoded %d of %d rows", c.Name(), seg.rows, len(rows))
	}
	if sc, ok := c.(StatefulCodec); ok && len(pages) > 0 {
		seg.stateBytes = int64(len(sc.SegmentState()))
		seg.payloadBytes += seg.stateBytes
	}
	return seg, nil
}

// NumPages returns the number of encoded pages (overflow runs count once).
func (g *Segment) NumPages() int { return len(g.pages) }

// PhysicalPages returns the total fixed-size page count, the number page-read
// accounting and SizePages estimates are diffed against.
func (g *Segment) PhysicalPages() int64 { return g.physPages }

// Rows returns the total row count.
func (g *Segment) Rows() int64 { return g.rows }

// PayloadBytes returns the accounted payload size (encoded bytes plus slot
// overhead, plus any serialized codec state), comparable to
// compress.SizeRows.
func (g *Segment) PayloadBytes() int64 { return g.payloadBytes }

// StateBytes returns the serialized codec-state size included in
// PayloadBytes (0 for stateless codecs).
func (g *Segment) StateBytes() int64 { return g.stateBytes }

// Page returns the i-th encoded page.
func (g *Segment) Page(i int) *EncodedPage { return &g.pages[i] }

// PageRows returns the row count of page i without decoding it.
func (g *Segment) PageRows(i int) int { return g.pages[i].Rows }

// PageStartRow returns the row offset (RID within the segment) of page i's
// first row. PageStartRow(NumPages()) is the total row count.
func (g *Segment) PageStartRow(i int) int64 { return g.starts[i] }

// PageForRow returns the page holding the given row offset, or -1 when the
// offset is out of range.
func (g *Segment) PageForRow(rid int64) int {
	if rid < 0 || rid >= g.rows {
		return -1
	}
	// Binary search the page whose [start, start+rows) range covers rid.
	lo, hi := 0, len(g.pages)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.starts[mid+1] > rid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DiskBytes returns the raw payload bytes of the segment — the size of its
// SegmentFile body, and the working-set size a buffer pool holds when every
// page is resident.
func (g *Segment) DiskBytes() int64 { return g.diskBytes }

// Spill writes the segment's pages to a file at path and switches payload
// fetches to go through the pool: in-memory payloads are released, and every
// later page access pins the page in the pool (loading it from disk on a
// miss). Page metadata (row counts, accounted bytes, low keys held by the
// index level) stays in memory.
func (g *Segment) Spill(path string, pool *bufferpool.Pool) error {
	if pool == nil {
		return fmt.Errorf("storage: Spill needs a pool")
	}
	if g.backing != nil {
		return fmt.Errorf("storage: segment already spilled to %s", g.backing.file.Path())
	}
	sf, err := WriteSegmentFile(path, g)
	if err != nil {
		return err
	}
	g.backing = &segBacking{file: sf, pool: pool, fileID: pool.RegisterFile()}
	for i := range g.pages {
		g.pages[i].Payload = nil
	}
	return nil
}

// Repool switches a spilled segment to a different buffer pool (frames in
// the old pool are invalidated). The on-disk file is reused, so sweeping
// pool sizes over one segment doesn't re-encode or re-write anything.
func (g *Segment) Repool(pool *bufferpool.Pool) error {
	if g.backing == nil {
		return fmt.Errorf("storage: Repool on an in-memory segment")
	}
	if g.backing.closed.Load() {
		return fmt.Errorf("storage: Repool on a closed segment backing")
	}
	g.backing.pool.InvalidateFile(g.backing.fileID)
	g.backing.pool = pool
	g.backing.fileID = pool.RegisterFile()
	return nil
}

// Backed reports whether the segment serves payloads from disk.
func (g *Segment) Backed() bool { return g.backing != nil }

// CloseBacking invalidates a spilled segment: its pool frames are dropped,
// the on-disk file is removed, and every later FetchPage fails. Writes call
// this when the segment's rows went stale — the guard that a cursor holding
// the old segment can never read pre-write pages back out of the pool.
func (g *Segment) CloseBacking() {
	if g.backing == nil || g.backing.closed.Swap(true) {
		return
	}
	// Order matters: closed is already set, so no new fetch or prefetch
	// starts; InvalidateFile poisons loads already in flight; Remove closes
	// the fd so any straggling ReadAt errors instead of reading.
	g.backing.pool.InvalidateFile(g.backing.fileID)
	g.backing.file.Remove()
}

// BackingFileID returns the pool file identity of a spilled segment and true,
// or 0 and false for in-memory or closed segments. The pool's per-file
// counters for this identity are the measured-hit-rate input the pool-aware
// cost model consumes.
func (g *Segment) BackingFileID() (uint64, bool) {
	b := g.backing
	if b == nil || b.closed.Load() {
		return 0, false
	}
	return b.fileID, true
}

// FetchPage returns page i's payload and a release func the caller must
// invoke when done decoding. In-memory segments return the resident payload
// (release is a no-op and io is untouched); spilled segments pin the page in
// the pool, counting the hit or miss (and miss bytes) into io.
func (g *Segment) FetchPage(i int, io *IOStats) ([]byte, func(), error) {
	b := g.backing
	if b == nil {
		return g.pages[i].Payload, func() {}, nil
	}
	if b.closed.Load() {
		return nil, nil, fmt.Errorf("storage: stale segment: backing file was invalidated by a write")
	}
	k := bufferpool.Key{File: b.fileID, Page: i}
	data, hit, err := b.pool.Get(k, b.loadPage(i))
	if err != nil {
		return nil, nil, err
	}
	if io != nil {
		if hit {
			io.PoolHits++
		} else {
			io.PoolMisses++
			io.BytesRead += int64(len(data))
		}
	}
	return data, func() { b.pool.Unpin(k) }, nil
}

// loadPage builds the pool load closure for page i. The closed re-check
// after the read narrows the stale-bytes window: a read that completed just
// before CloseBacking still fails here instead of being admitted.
func (b *segBacking) loadPage(i int) func() ([]byte, error) {
	return func() ([]byte, error) {
		data, err := b.file.ReadPage(i)
		if err == nil && b.closed.Load() {
			return nil, fmt.Errorf("storage: stale segment: backing file was invalidated by a write")
		}
		return data, err
	}
}

// PrefetchPage speculatively loads page i into the pool (unpinned) so an
// upcoming sequential FetchPage hits instead of stalling. Returns the bytes
// loaded: 0 when the segment is in-memory, closed, or the page is already
// resident or in flight. Errors are returned for accounting but a failed
// prefetch is harmless — the page simply stays cold.
func (g *Segment) PrefetchPage(i int) (int64, error) {
	b := g.backing
	if b == nil || b.closed.Load() {
		return 0, nil
	}
	return b.pool.Prefetch(bufferpool.Key{File: b.fileID, Page: i}, b.loadPage(i))
}

// PrefetchSpan speculatively loads pages [lo, hi) into the pool (unpinned)
// with at most one coalesced span read: the first page that is actually
// missing triggers a single ReadAt covering the whole span, and every other
// missing page is admitted from that buffer. Resident or in-flight pages are
// skipped. Returns the pages and payload bytes actually admitted; like
// PrefetchPage, errors are for accounting only — the pages simply stay cold.
func (g *Segment) PrefetchSpan(lo, hi int) (pages int, bytes int64, err error) {
	b := g.backing
	if b == nil || b.closed.Load() {
		return 0, 0, nil
	}
	var span [][]byte
	var spanErr error
	readSpan := func() {
		span, spanErr = b.file.ReadPageSpan(lo, hi)
		if spanErr == nil && b.closed.Load() {
			span, spanErr = nil, fmt.Errorf("storage: stale segment: backing file was invalidated by a write")
		}
	}
	for i := lo; i < hi; i++ {
		i := i
		n, perr := b.pool.Prefetch(bufferpool.Key{File: b.fileID, Page: i}, func() ([]byte, error) {
			if span == nil && spanErr == nil {
				readSpan()
			}
			if spanErr != nil {
				return nil, spanErr
			}
			return span[i-lo], nil
		})
		if perr != nil && err == nil {
			err = perr
		}
		if n > 0 {
			pages++
			bytes += n
		}
	}
	return pages, bytes, err
}

// DecodePage decodes page i back into rows.
func (g *Segment) DecodePage(i int) ([]Row, error) {
	payload, release, err := g.FetchPage(i, nil)
	if err != nil {
		return nil, err
	}
	defer release()
	return g.Codec.DecodePage(g.Schema, payload, g.pages[i].Rows)
}

// DecodeColumnsPage runs a column-selective decode of page i.
func (g *Segment) DecodeColumnsPage(i int, spec *DecodeSpec) (*DecodedPage, error) {
	payload, release, err := g.FetchPage(i, nil)
	if err != nil {
		return nil, err
	}
	defer release()
	return g.Codec.DecodeColumns(g.Schema, payload, g.pages[i].Rows, spec)
}

// ScanAll decodes every page in order — the full-scan access path without
// accounting (callers that need PageReads counters decode page by page).
func (g *Segment) ScanAll() ([]Row, error) {
	out := make([]Row, 0, g.rows)
	for i := range g.pages {
		rows, err := g.DecodePage(i)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}
