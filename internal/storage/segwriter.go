package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"cadb/internal/bufferpool"
)

// SegmentWriter builds a disk-backed Segment from a stream of row batches
// without ever materializing all rows (or all page payloads) in memory — the
// out-of-core build path for tables too large to generate in one slice.
//
// Encoding is chunked but byte-identical to a whole-slice BuildSegment:
// every codec packs pages greedily (a page takes the longest prefix of the
// remaining rows whose encoding fits), and fit is monotone in row count, so
// any page that overflowed within a chunk is exactly the page a whole-slice
// encode would produce. Only the final page of a chunk is tentative — more
// rows might still have packed into it — so its rows are retained and
// re-encoded with the next batch; everything before it is flushed to a
// payload spool file immediately.
//
// Finish assembles the real segment file (header, directory, payloads) from
// the spool and returns a Segment already serving pages through the pool.
type SegmentWriter struct {
	schema *Schema
	codec  PageCodec
	path   string

	spool   *os.File // payload bytes of flushed pages, in order
	spoolAt uint64

	pending []Row // rows of the tentative tail page (plus any unencoded rows)

	entries  []segPageEntry // offsets are spool-relative until Finish
	pages    []EncodedPage  // metadata only; Payload stays nil
	rows     int64
	finished bool
}

// NewSegmentWriter starts an out-of-core segment build that will land at
// path. The payload spool lives next to the target file until Finish.
func NewSegmentWriter(path string, s *Schema, c PageCodec) (*SegmentWriter, error) {
	if c == nil {
		return nil, fmt.Errorf("storage: nil page codec")
	}
	if len(c.Name()) > 255 {
		return nil, fmt.Errorf("storage: codec name %q too long", c.Name())
	}
	spool, err := os.Create(path + ".spool")
	if err != nil {
		return nil, err
	}
	return &SegmentWriter{schema: s, codec: c, path: path, spool: spool}, nil
}

// Append adds a batch of rows to the segment. The writer retains references
// to at most the tail page's worth of them; callers may reuse nothing but
// must not mutate rows after handing them over.
func (w *SegmentWriter) Append(rows []Row) error {
	if w.finished {
		return fmt.Errorf("storage: Append after Finish")
	}
	w.pending = append(w.pending, rows...)
	return w.encodePending(false)
}

// encodePending encodes the buffered rows, flushing every page that is
// final: all of them when closing, all but the tentative tail otherwise.
func (w *SegmentWriter) encodePending(closing bool) error {
	if len(w.pending) == 0 {
		return nil
	}
	pages, err := w.codec.EncodeRows(w.schema, w.pending)
	if err != nil {
		return err
	}
	keep := 1 // the tail page is tentative until the stream ends
	if closing {
		keep = 0
	}
	if len(pages) <= keep {
		return nil
	}
	flushed := 0
	for i := range pages[:len(pages)-keep] {
		p := &pages[i]
		if _, err := w.spool.Write(p.Payload); err != nil {
			return err
		}
		w.entries = append(w.entries, segPageEntry{
			offset:    w.spoolAt,
			length:    uint32(len(p.Payload)),
			rows:      uint32(p.Rows),
			accounted: uint32(p.AccountedBytes),
			crc:       crc32.ChecksumIEEE(p.Payload),
		})
		w.spoolAt += uint64(len(p.Payload))
		w.pages = append(w.pages, EncodedPage{Rows: p.Rows, AccountedBytes: p.AccountedBytes})
		w.rows += int64(p.Rows)
		flushed += p.Rows
	}
	w.pending = append(w.pending[:0], w.pending[flushed:]...)
	return nil
}

// Rows returns the rows appended so far (flushed plus pending).
func (w *SegmentWriter) Rows() int64 { return w.rows + int64(len(w.pending)) }

// Abort discards the build, removing the spool. Safe after Finish (no-op).
func (w *SegmentWriter) Abort() {
	if w.spool != nil {
		_ = w.spool.Close() // the spool is being discarded either way
		os.Remove(w.spool.Name())
		w.spool = nil
	}
}

// Finish encodes the remaining rows, writes the final segment file at the
// writer's path, and returns a Segment serving its pages through the pool
// (equivalent to BuildSegment followed by Spill, without the resident rows).
func (w *SegmentWriter) Finish(pool *bufferpool.Pool) (*Segment, error) {
	if w.finished {
		return nil, fmt.Errorf("storage: Finish called twice")
	}
	if pool == nil {
		return nil, fmt.Errorf("storage: Finish needs a pool")
	}
	if err := w.encodePending(true); err != nil {
		w.Abort()
		return nil, err
	}
	w.finished = true

	name := w.codec.Name()
	design, state := segDesign(w.codec, w.schema)
	prefix, err := segHeaderPrefix(name, design, state, len(w.entries), w.rows)
	if err != nil {
		w.Abort()
		return nil, err
	}
	headerLen := len(prefix) + 24*len(w.entries) + 4
	header := make([]byte, 0, headerLen)
	header = append(header, prefix...)
	for i := range w.entries {
		w.entries[i].offset += uint64(headerLen)
		header = binary.BigEndian.AppendUint64(header, w.entries[i].offset)
		header = binary.BigEndian.AppendUint32(header, w.entries[i].length)
		header = binary.BigEndian.AppendUint32(header, w.entries[i].rows)
		header = binary.BigEndian.AppendUint32(header, w.entries[i].accounted)
		header = binary.BigEndian.AppendUint32(header, w.entries[i].crc)
	}
	header = binary.BigEndian.AppendUint32(header, crc32.ChecksumIEEE(header))

	f, err := os.Create(w.path)
	if err != nil {
		w.Abort()
		return nil, err
	}
	fail := func(err error) (*Segment, error) {
		_ = f.Close() // best-effort cleanup; err is the story
		os.Remove(w.path)
		w.Abort()
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		return fail(err)
	}
	if _, err := w.spool.Seek(0, io.SeekStart); err != nil {
		return fail(err)
	}
	if _, err := io.Copy(f, w.spool); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// The spool's bytes are already copied into f and synced; its close
	// error cannot affect the finished segment.
	_ = w.spool.Close()
	os.Remove(w.spool.Name())
	w.spool = nil

	adviseRandom(f)
	sf := &SegmentFile{f: f, path: w.path, codecName: name, rows: w.rows, entries: w.entries, design: design, state: state}
	seg := &Segment{Schema: w.schema, Codec: w.codec, pages: w.pages, rows: w.rows}
	seg.starts = make([]int64, len(w.pages)+1)
	for i := range w.pages {
		seg.starts[i+1] = seg.starts[i] + int64(w.pages[i].Rows)
		seg.payloadBytes += int64(w.pages[i].AccountedBytes)
		seg.physPages += w.pages[i].PhysicalPages()
		seg.diskBytes += int64(w.entries[i].length)
	}
	if len(w.pages) > 0 {
		seg.stateBytes = int64(len(state))
		seg.payloadBytes += seg.stateBytes
	}
	seg.backing = &segBacking{file: sf, pool: pool, fileID: pool.RegisterFile()}
	return seg, nil
}
