package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table or index.
type Column struct {
	Name string
	Kind Kind
	// FixedWidth, when non-zero for KindString, means the column is CHAR(n):
	// values are stored padded to n bytes in the uncompressed format. This is
	// what makes NULL/blank suppression profitable, mirroring SQL Server's
	// ROW compression of fixed-width columns.
	FixedWidth int
	Nullable   bool
}

// Width returns the number of bytes the column occupies in the uncompressed
// row format.
func (c Column) Width() int {
	switch c.Kind {
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindDate:
		return 4
	case KindString:
		if c.FixedWidth > 0 {
			return c.FixedWidth
		}
		return 0 // variable width: 2-byte length prefix + bytes
	}
	return 8
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema and its name index. Column names must be unique
// (case-insensitive).
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q", c.Name))
		}
		s.byName[key] = i
	}
	return s
}

// ColIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Col returns the named column; it panics if the column does not exist.
func (s *Schema) Col(name string) Column {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: unknown column %q", name))
	}
	return s.Columns[i]
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.ColIndex(name) >= 0 }

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema containing only the named columns, in the
// given order.
func (s *Schema) Project(names []string) *Schema {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		cols = append(cols, s.Col(n))
	}
	return NewSchema(cols...)
}

// RowWidth returns the uncompressed byte width of a row: a null bitmap plus
// each column's storage (variable-width strings add their length at call
// time, so this is the fixed part; see EncodeRow for the exact size).
func (s *Schema) RowWidth() int {
	w := (len(s.Columns) + 7) / 8 // null bitmap
	for _, c := range s.Columns {
		if cw := c.Width(); cw > 0 {
			w += cw
		} else {
			w += 2 // variable-length size prefix
		}
	}
	return w
}

// AvgRowWidth returns the average encoded width over the given rows (exact,
// computed by encoding). Useful for page-capacity planning.
func (s *Schema) AvgRowWidth(rows []Row) float64 {
	if len(rows) == 0 {
		return float64(s.RowWidth())
	}
	var total int
	for _, r := range rows {
		total += EncodedRowSize(s, r)
	}
	return float64(total) / float64(len(rows))
}

// String renders the schema as a DDL-ish column list.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
		if c.Kind == KindString && c.FixedWidth > 0 {
			fmt.Fprintf(&b, "(%d)", c.FixedWidth)
		}
	}
	return b.String()
}
