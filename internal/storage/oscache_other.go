//go:build !linux || (!amd64 && !arm64)

package storage

import "os"

// DropOSCache is a no-op on platforms without posix_fadvise: cold-read
// benchmarks run warm there, and correctness never depends on eviction.
func DropOSCache(path string) error { return nil }

// adviseRandom is a no-op on platforms without posix_fadvise.
func adviseRandom(f *os.File) {}
