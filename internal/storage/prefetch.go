package storage

import (
	"sync"
	"sync/atomic"
)

// Prefetcher drives async readahead over one page range of a spilled
// segment. A sequential cursor creates one per scan and calls Advance with
// its current page; the prefetcher keeps a bounded window of pages ahead of
// that frontier in flight on a small worker pool. Contiguous runs of the
// visit order are coalesced into spans of up to MaxPrefetchSpanPages pages,
// each loaded with one large ReadAt via Segment.PrefetchSpan (unpinned
// speculative pool admissions) — so readahead I/O runs at sequential-disk
// bandwidth while the demand path pays per-page latency. The cursor's later
// FetchPage then hits instead of stalling on a serial ReadAt.
//
// Prefetch failures are silent by design: a page that fails to prefetch is
// simply still cold when the cursor reaches it, and the cursor's own fetch
// reports the real error. In particular CloseBacking/InvalidateFile racing a
// prefetch makes the in-flight loads fail (the stale-frame guard poisons
// them), which is exactly the cancellation the guard requires.
//
// Advance must be called from a single goroutine (the cursor's); Close may
// be called once, after which the workers have drained.
type Prefetcher struct {
	seg    *Segment
	plan   []int // pages in visit order; Advance positions index this list
	window int

	queue chan [2]int // coalesced page spans [lo, hi)
	stop  chan struct{}
	wg    sync.WaitGroup

	nextIssue int  // next plan index to schedule (cursor goroutine only)
	closed    bool // Close already ran (cursor goroutine only)

	pages atomic.Int64 // pages actually loaded (not already resident)
	bytes atomic.Int64 // payload bytes those loads read
}

// DefaultPrefetchWindow and DefaultPrefetchWorkers are the knob defaults the
// exec layer applies when prefetch is switched on without explicit sizing:
// a couple of full coalesced spans in flight (2 MB of readahead at 8 KB
// pages), few enough workers that a scan doesn't monopolize the pool.
// MaxPrefetchSpanPages caps how many contiguous pages one worker reads in a
// single coalesced ReadAt (1 MB at full 8 KB pages).
const (
	DefaultPrefetchWindow  = 256
	DefaultPrefetchWorkers = 4
	MaxPrefetchSpanPages   = 128
)

// StartPrefetch launches readahead for pages [lo, hi) of the segment with
// the given window and worker count. Returns nil when the segment is not
// disk-backed or the parameters disable prefetch (window or workers < 1) —
// callers treat a nil Prefetcher as a no-op.
func StartPrefetch(seg *Segment, lo, hi, window, workers int) *Prefetcher {
	if lo >= hi {
		return nil
	}
	plan := make([]int, hi-lo)
	for i := range plan {
		plan[i] = lo + i
	}
	return StartPrefetchPlan(seg, plan, window, workers)
}

// StartPrefetchPlan launches readahead over an explicit page visit order —
// the form cursors use, since a RID cursor's pages are sparse. Advance
// positions are indexes into the plan, not page numbers.
func StartPrefetchPlan(seg *Segment, plan []int, window, workers int) *Prefetcher {
	if seg == nil || !seg.Backed() || window < 1 || workers < 1 || len(plan) == 0 {
		return nil
	}
	if workers > window {
		workers = window
	}
	pf := &Prefetcher{
		seg:    seg,
		plan:   plan,
		window: window,
		queue:  make(chan [2]int, window),
		stop:   make(chan struct{}),
	}
	pf.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go pf.worker()
	}
	return pf
}

func (pf *Prefetcher) worker() {
	defer pf.wg.Done()
	for {
		select {
		case <-pf.stop:
			return
		case span, ok := <-pf.queue:
			if !ok {
				return
			}
			pages, bytes, err := pf.seg.PrefetchSpan(span[0], span[1])
			if err == nil && pages > 0 {
				pf.pages.Add(int64(pages))
				pf.bytes.Add(bytes)
			}
		}
	}
}

// Advance notifies the prefetcher that the scan is about to consume plan
// position at: pages up to at+window (clamped to the plan end) are
// scheduled, coalescing runs of consecutive page numbers into spans of up to
// MaxPrefetchSpanPages. Issuance is deliberately chunky: once the initial
// window is in flight the frontier advances one position per consumed page,
// and issuing each position individually would degenerate into single-page
// reads — so spans are held back until at least half a max span (capped by
// half the window) is issuable, except at the plan tail. Never blocks — when
// the queue is full the remainder is scheduled on a later Advance, keeping
// the readahead depth bounded even if workers stall.
func (pf *Prefetcher) Advance(at int) {
	if pf == nil || pf.closed {
		return
	}
	target := at + pf.window
	if target > len(pf.plan) {
		target = len(pf.plan)
	}
	minIssue := MaxPrefetchSpanPages / 2
	if w := pf.window / 2; w < minIssue {
		minIssue = w
	}
	if minIssue < 1 {
		minIssue = 1
	}
	for pf.nextIssue < target {
		if target-pf.nextIssue < minIssue && target < len(pf.plan) {
			return
		}
		lo := pf.plan[pf.nextIssue]
		n := 1
		for pf.nextIssue+n < target && n < MaxPrefetchSpanPages && pf.plan[pf.nextIssue+n] == lo+n {
			n++
		}
		select {
		case pf.queue <- [2]int{lo, lo + n}:
			pf.nextIssue += n
		default:
			return
		}
	}
}

// Close stops the workers, waits for in-flight loads to settle, and flushes
// the prefetch accounting into io (PoolPrefetched pages, BytesRead for the
// loaded bytes). Safe on a nil receiver and idempotent (later calls are
// no-ops, so an accounting sink is only honored on the first).
func (pf *Prefetcher) Close(io *IOStats) {
	if pf == nil || pf.closed {
		return
	}
	pf.closed = true
	close(pf.stop)
	pf.wg.Wait()
	if io != nil {
		io.PoolPrefetched += pf.pages.Load()
		io.BytesRead += pf.bytes.Load()
	}
}
