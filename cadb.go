// Package cadb is a compression-aware physical database design advisor — a
// from-scratch Go reproduction of "Compression Aware Physical Database
// Design" (Kimura, Narasayya, Syamala; PVLDB 4(10), 2011).
//
// The library bundles everything the paper's system needs, built on the
// standard library only:
//
//   - a small row-store storage engine with real page-level compression
//     (ROW/null-suppression, PAGE/prefix+local-dictionary, global
//     dictionary, RLE) so index sizes are measured, not modeled;
//   - a query optimizer with histogram-based cardinality estimation, a
//     what-if API, and the paper's compression-aware cost model
//     (α·tuples_written on updates, β·tuples_read·columns_read on reads);
//   - the compressed-index size-estimation framework: amortized per-table
//     samples, SampleCF, join synopses, MV samples with an Adaptive
//     Estimator, ColSet/ColExt deductions, the stochastic error model, and
//     the estimation-plan graph search (greedy + exact optimal);
//   - the advisor itself (DTA/DTAc): per-query candidate generation,
//     skyline candidate selection, index merging, and greedy enumeration
//     with compressed-variant backtracking under a storage bound;
//   - TPC-H-, TPC-DS- and Sales-shaped data generators with tunable Zipf
//     skew, plus the corresponding SQL workloads;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	db := cadb.NewTPCH(cadb.TPCHConfig{LineitemRows: 20000, Seed: 1})
//	wl := cadb.TPCHWorkload()
//	opts := cadb.DefaultOptions(db.TotalHeapBytes() / 4) // 25% budget
//	rec, err := cadb.Tune(db, wl, opts)
//	if err != nil { ... }
//	fmt.Println(rec)
package cadb

import (
	"fmt"
	"io"

	"cadb/internal/bufferpool"
	"cadb/internal/catalog"
	"cadb/internal/compress"
	"cadb/internal/core"
	"cadb/internal/datagen"
	"cadb/internal/estimator"
	"cadb/internal/exec"
	"cadb/internal/experiments"
	"cadb/internal/index"
	"cadb/internal/optimizer"
	"cadb/internal/sampling"
	"cadb/internal/sizeest"
	"cadb/internal/sizing"
	"cadb/internal/sqlparse"
	"cadb/internal/storage"
	"cadb/internal/workload"
	"cadb/internal/workloads"
)

// ---------------------------------------------------------------------------
// Data model

// Database is a set of tables with rows and statistics.
type Database = catalog.Database

// Table is one relation.
type Table = catalog.Table

// Workload is a weighted set of SQL statements.
type Workload = workload.Workload

// Statement is one workload entry (query or bulk insert).
type Statement = workload.Statement

// Query is a SELECT statement in the supported subset.
type Query = workload.Query

// IndexDef describes a (possibly compressed, partial, clustered or MV)
// index.
type IndexDef = index.Def

// MVDef describes a materialized view (fact, FK joins, WHERE, GROUP BY,
// aggregates).
type MVDef = index.MVDef

// CompressionMethod identifies a compression method.
type CompressionMethod = compress.Method

// Compression methods supported by the storage engine.
const (
	// NoCompression stores plain rows.
	NoCompression = compress.None
	// RowCompression is null/blank suppression (SQL Server ROW).
	RowCompression = compress.Row
	// PageCompression is prefix + per-page dictionary (SQL Server PAGE).
	PageCompression = compress.Page
	// GlobalDictCompression is a whole-index per-column dictionary.
	GlobalDictCompression = compress.GlobalDict
	// RLECompression is per-page run-length encoding.
	RLECompression = compress.RLE
)

// HasCodec reports whether the method has a materializing page codec (and so
// can back a physical segment). Every recommendable method does — GDICT and
// RLE materialize through the column-major codec, NONE/ROW/PAGE through the
// row-major ones.
func HasCodec(m CompressionMethod) bool { return compress.HasCodec(m) }

// PageCodec encodes rows into page payloads and back.
type PageCodec = storage.PageCodec

// DesignCodec returns the page codec for a per-column design: def as the
// default method with overrides for individual columns (as in
// IndexDef.ColMethods). Uniform NONE/ROW/PAGE designs collapse to the
// stateless row-major codecs; everything else is served by the column-major
// codec, whose per-segment state (the global dictionaries) rides in the
// CADBSEG2 file format.
func DesignCodec(def CompressionMethod, overrides map[string]CompressionMethod) PageCodec {
	return compress.DesignCodec(def, overrides)
}

// ---------------------------------------------------------------------------
// Data and workload generation

// TPCHConfig sizes the TPC-H-shaped generator.
type TPCHConfig = datagen.TPCHConfig

// SalesConfig sizes the Sales star-schema generator.
type SalesConfig = datagen.SalesConfig

// TPCDSConfig sizes the TPC-DS-shaped generator.
type TPCDSConfig = datagen.TPCDSConfig

// NewTPCH generates a TPC-H-shaped database (LineitemRows scales everything;
// Zipf sets the paper's Z skew parameter).
func NewTPCH(cfg TPCHConfig) *Database { return datagen.NewTPCH(cfg) }

// NewSales generates the Sales star schema standing in for the paper's real
// customer database.
func NewSales(cfg SalesConfig) *Database { return datagen.NewSales(cfg) }

// NewTPCDS generates a TPC-DS-shaped star schema (used by the error
// stability analysis).
func NewTPCDS(cfg TPCDSConfig) *Database { return datagen.NewTPCDS(cfg) }

// TPCHWorkload returns the 22-query + 2-bulk-load TPC-H-shaped workload.
func TPCHWorkload() *Workload { return workloads.MustTPCH() }

// SalesWorkload returns the generated 50-query + 2-bulk-load Sales workload.
func SalesWorkload(seed int64) *Workload { return workloads.MustSales(seed) }

// TPCHWorkloadWithUpdates returns the TPC-H-shaped workload extended with
// predicated UPDATE/DELETE statements (the update-capable variant).
func TPCHWorkloadWithUpdates() *Workload { return workloads.MustTPCHWithUpdates() }

// SalesWorkloadWithUpdates returns the generated Sales workload extended
// with seeded UPDATE/DELETE statements over the fact table.
func SalesWorkloadWithUpdates(seed int64) *Workload { return workloads.MustSalesWithUpdates(seed) }

// SelectIntensive scales the bulk-load weights down by 10x.
func SelectIntensive(wl *Workload) *Workload { return workloads.SelectIntensive(wl) }

// InsertIntensive scales the bulk-load weights up by 10x.
func InsertIntensive(wl *Workload) *Workload { return workloads.InsertIntensive(wl) }

// UpdateIntensive scales the UPDATE/DELETE weights up by 10x.
func UpdateIntensive(wl *Workload) *Workload { return workloads.UpdateIntensive(wl) }

// ChunkedSource streams a deterministic synthetic fact table in fixed-size
// blocks whose randomness is re-derived per (seed, block), so any block can
// be generated independently — the out-of-core generation path that reaches
// 10⁷ rows without materializing a database.
type ChunkedSource = datagen.ChunkedSource

// ChunkedBlockRows is the fixed block size of a ChunkedSource.
const ChunkedBlockRows = datagen.ChunkedBlockRows

// NewChunkedSource returns the out-of-core fact generator for a dataset name
// ("tpch" or "sales"). The rows match the in-memory generators' schema and
// distributions (not row-for-row — dimension-derived values are hashed from
// keys instead of looked up).
func NewChunkedSource(name string, rows int, zipf float64, seed int64) (*ChunkedSource, error) {
	return datagen.ChunkedByName(name, rows, zipf, seed)
}

// ParseWorkload parses a SQL workload script (semicolon-separated statements
// with optional "-- label: X weight: N" directives).
func ParseWorkload(sql string) (*Workload, error) { return sqlparse.ParseScript(sql) }

// ParseStatement parses a single SQL statement in the supported subset.
func ParseStatement(sql string) (*Statement, error) { return sqlparse.ParseStatement(sql) }

// ---------------------------------------------------------------------------
// The advisor

// Options configures an advisor run; see DefaultOptions and DTAOptions.
type Options = core.Options

// Recommendation is the advisor's output.
type Recommendation = core.Recommendation

// Advisor is the compression-aware physical design advisor.
type Advisor = core.Advisor

// DefaultOptions returns the full DTAc configuration (compression, skyline
// selection and backtracking enabled) at the given storage budget in bytes.
func DefaultOptions(budget int64) Options { return core.DefaultOptions(budget) }

// DTAOptions returns the compression-blind baseline configuration.
func DTAOptions(budget int64) Options { return core.DTAOptions(budget) }

// NewAdvisor creates an advisor for a database and workload.
func NewAdvisor(db *Database, wl *Workload, opts Options) *Advisor {
	return core.New(db, wl, opts)
}

// Tune runs the advisor end to end.
func Tune(db *Database, wl *Workload, opts Options) (*Recommendation, error) {
	return core.New(db, wl, opts).Recommend()
}

// ---------------------------------------------------------------------------
// What-if optimizer and size estimation (the substrate APIs)

// CostModel is the compression-aware optimizer cost model with the what-if
// API (Cost, Plan, WorkloadCost, Improvement).
type CostModel = optimizer.CostModel

// Configuration is a set of hypothetical indexes.
type Configuration = optimizer.Configuration

// HypoIndex is a hypothetical index with (estimated) size information.
type HypoIndex = optimizer.HypoIndex

// NewCostModel builds the default cost model for a database.
func NewCostModel(db *Database) *CostModel { return optimizer.NewCostModel(db) }

// NewConfiguration builds a configuration from hypothetical indexes.
func NewConfiguration(idxs ...*HypoIndex) *Configuration {
	return optimizer.NewConfiguration(idxs...)
}

// BuildIndex physically materializes an index and measures its exact size.
func BuildIndex(db *Database, d *IndexDef) (*index.Physical, error) { return index.Build(db, d) }

// FromPhysical wraps a built index as a hypothetical index with exact sizes.
func FromPhysical(p *index.Physical) *HypoIndex { return optimizer.FromPhysical(p) }

// SizeEstimator estimates compressed index sizes via SampleCF and deduction.
type SizeEstimator = estimator.Estimator

// SizeEstimate is one size estimate with its error distribution.
type SizeEstimate = estimator.Estimate

// NewSizeEstimator creates an estimator over a fresh sample manager with
// sampling fraction f.
func NewSizeEstimator(db *Database, f float64, seed int64) *SizeEstimator {
	return estimator.New(db, sampling.NewManager(db, f, seed))
}

// SizeOracle is the size-estimation orchestration layer the advisor runs on:
// plan the estimation strategy over shared f-grid prefix samples, execute
// the deduction DAG in parallel with batched SampleCF, and admit
// late-arriving index definitions into the live graph. Estimates are
// byte-identical to the serial plan-execution path at any worker count.
type SizeOracle = sizeest.Oracle

// SizeOracleConfig parameterizes a size oracle.
type SizeOracleConfig = sizeest.Config

// SizeAccounting is the oracle's runtime split and admission counters.
type SizeAccounting = sizeest.Accounting

// NewSizeOracle creates the batched, DAG-parallel size oracle.
func NewSizeOracle(db *Database, cfg SizeOracleConfig) SizeOracle {
	return sizeest.New(db, cfg)
}

// EstimationPlan is a solved estimation strategy (which indexes to SampleCF,
// which to deduce).
type EstimationPlan = sizing.Plan

// PlanEstimation runs the greedy graph search over the default sampling
// fraction grid and returns the cheapest feasible plan plus the estimator to
// execute it with (tolerance e, confidence q as in Section 5.1).
func PlanEstimation(db *Database, targets []*IndexDef, e, q float64, seed int64) (*EstimationPlan, *SizeEstimator) {
	return sizing.Sweep(db, targets, nil, e, q, nil, seed, sizing.Greedy)
}

// ExecuteEstimation runs a plan, returning estimates keyed by IndexDef.ID().
func ExecuteEstimation(est *SizeEstimator, p *EstimationPlan) (map[string]*SizeEstimate, error) {
	return sizing.Execute(est, p)
}

// ---------------------------------------------------------------------------
// The physical page store and segment-backed execution

// Segment is a materialized compressed page store (rows encoded into real
// 8 KB slotted pages by a per-method codec).
type Segment = storage.Segment

// SegmentIndex is a physically materialized index: leaf rows compressed into
// a segment, with per-page low keys for leading-key seeks and measured
// sizes diffable against the size model.
type SegmentIndex = index.SegmentIndex

// SegmentStore is the segment-backed executor: per-table compressed page
// stores plus key-ordered index segments. Queries run as a streaming
// operator pipeline — pages decode lazily and column-selectively, with
// sargable predicates pushed down into the page codec — and report their
// physical I/O. Results are byte-identical to the plain-row reference
// executor. SetEagerDecode(true) restores the full-decode baseline.
type SegmentStore = exec.Store

// ExecResult is an executed query's output (rows plus, for segment-backed
// runs, the I/O counters and access-path descriptions).
type ExecResult = exec.Result

// ExecIOStats counts the physical work of a segment-backed execution: page
// reads, pages and tuples decoded, per-page column payloads decoded, and —
// under the disk-backed path — buffer-pool hits, misses and bytes read.
type ExecIOStats = exec.IOStats

// DecodeSpec tells a page codec which columns to reconstruct and which
// predicates to evaluate during decode (the pushed-down half of a streaming
// scan).
type DecodeSpec = storage.DecodeSpec

// ColPredicate is one pushed-down comparison: a column ordinal, an operator
// and bounds pre-coerced to the column kind.
type ColPredicate = storage.ColPredicate

// BuildSegmentIndex materializes an index definition as a compressed page
// segment. Only NONE/ROW/PAGE have materializing codecs.
func BuildSegmentIndex(db *Database, d *IndexDef) (*SegmentIndex, error) {
	return index.BuildSegmentIndex(db, d)
}

// NewSegmentStore materializes a physical design as a segment-backed store.
func NewSegmentStore(db *Database, defs []*IndexDef) (*SegmentStore, error) {
	return exec.NewStore(db, defs)
}

// ---------------------------------------------------------------------------
// Disk-backed segments and the buffer pool

// BufferPool is a byte-budgeted page cache with pin/unpin semantics and CLOCK
// eviction. Disk-backed segment stores fetch every page through one; pinned
// pages are never evicted and resident bytes never exceed the configured
// capacity.
type BufferPool = bufferpool.Pool

// BufferPoolStats are a pool's lifetime counters (hits, misses, evictions,
// bytes read from disk, peak resident bytes).
type BufferPoolStats = bufferpool.Stats

// NewBufferPool creates a pool holding at most capacityBytes of page
// payloads.
func NewBufferPool(capacityBytes int64) *BufferPool { return bufferpool.New(capacityBytes) }

// SegmentFile is the on-disk form of a segment: a checksummed header and
// page directory followed by the raw page payloads, readable page-by-page
// via ReadAt.
type SegmentFile = storage.SegmentFile

// WriteSegmentFile writes a segment's pages to disk and returns an open
// handle.
func WriteSegmentFile(path string, seg *Segment) (*SegmentFile, error) {
	return storage.WriteSegmentFile(path, seg)
}

// OpenSegmentFile opens an existing segment file, validating the header
// checksum.
func OpenSegmentFile(path string) (*SegmentFile, error) { return storage.OpenSegmentFile(path) }

// SegmentWriter builds a disk-backed segment from a stream of row batches
// without materializing all rows or pages in memory — byte-identical to a
// whole-slice build, holding only the tentative tail page between batches.
type SegmentWriter = storage.SegmentWriter

// NewChunkedSegmentWriter starts an out-of-core segment build at path for a
// chunked source's schema under the given compression method (which must
// have a materializing codec). Stream src's blocks through Append and call
// Finish with a buffer pool to obtain the disk-backed Segment.
func NewChunkedSegmentWriter(path string, src *ChunkedSource, m CompressionMethod) (*SegmentWriter, error) {
	codec := compress.Codec(m)
	if codec == nil {
		return nil, fmt.Errorf("cadb: method %s has no materializing codec", m)
	}
	return storage.NewSegmentWriter(path, src.Schema(), codec)
}

// WrapSegmentScanOnly wraps an already-built segment (e.g. a SegmentWriter's
// output) as a scan-only SegmentIndex: no per-page low keys, but full-scan
// and parallel-scan cursors work unchanged.
func WrapSegmentScanOnly(seg *Segment, d *IndexDef) *SegmentIndex {
	return index.WrapSegment(seg, d)
}

// PoolProfile makes what-if costing buffer-pool-aware: page-I/O cost terms
// are discounted by each structure's expected hit rate (measured per-file
// rates win over the fits-in-capacity heuristic). Install via
// CostModel.SetPoolProfile or Options.PoolProfile.
type PoolProfile = optimizer.PoolProfile

// NewPoolProfile returns a profile for a pool of the given capacity with the
// default resident hit rate.
func NewPoolProfile(capacityBytes int64) *PoolProfile { return optimizer.NewPoolProfile(capacityBytes) }

// PoolPoint is one cell of the pool-size × compression-method sweep.
type PoolPoint = experiments.PoolPoint

// PoolSweepConfig sizes a PoolSweep run.
type PoolSweepConfig = experiments.PoolSweepConfig

// DefaultPoolSweepConfig is the README-documented sweep configuration.
func DefaultPoolSweepConfig() PoolSweepConfig { return experiments.DefaultPoolSweepConfig() }

// PoolSweep measures buffer-pool hit rate and wall-clock across pool sizes
// and compression methods over disk-backed segments (the ext-pool
// experiment's engine). Above experiments.ChunkedPoolRows fact rows it
// switches to the out-of-core chunked build path automatically.
func PoolSweep(cfg PoolSweepConfig) ([]PoolPoint, error) { return experiments.PoolSweep(cfg) }

// ScanPoint is one cell of the cold-scan bandwidth sweep (method × rows ×
// scan mode).
type ScanPoint = experiments.ScanPoint

// ScanSweepConfig sizes a ScanSweep.
type ScanSweepConfig = experiments.ScanSweepConfig

// DefaultScanSweepConfig is the README-documented scan-sweep configuration.
func DefaultScanSweepConfig() ScanSweepConfig { return experiments.DefaultScanSweepConfig() }

// ScanSweep measures cold full-scan bandwidth over disk-backed segments
// built out-of-core: raw sequential ReadAt vs serial cursor vs async
// readahead vs partitioned parallel scan, each through a fresh buffer pool,
// with the decoding modes verified checksum-identical (the ext-scan
// experiment's engine).
func ScanSweep(cfg ScanSweepConfig) ([]ScanPoint, error) { return experiments.ScanSweep(cfg) }

// MeasuredSize is one structure×method comparison of the size model against
// a materialized segment (the ext-measured experiment's unit).
type MeasuredSize = experiments.MeasuredSize

// MeasuredExec is one statement's estimated-vs-counted page-read comparison
// with its oracle-identity verdict.
type MeasuredExec = experiments.MeasuredExec

// MeasuredScenario is one execution-comparison scenario of ext-measured.
type MeasuredScenario = experiments.MeasuredScenario

// MeasuredSizes materializes each structure under each method and diffs the
// size model against the physical segment.
func MeasuredSizes(db *Database, structures []*IndexDef, methods []CompressionMethod) ([]MeasuredSize, error) {
	return experiments.MeasuredSizes(db, structures, methods)
}

// MeasuredDesignSizes materializes each definition exactly as given —
// per-column ColMethods overrides included — and diffs the design-aware size
// model against the physical segment.
func MeasuredDesignSizes(db *Database, defs []*IndexDef) ([]MeasuredSize, error) {
	return experiments.MeasuredDesignSizes(db, defs)
}

// DesignCost is one row of the mixed-vs-uniform design comparison.
type DesignCost = experiments.DesignCost

// MixedVsUniform compares the select-intensive TPC-H workload's what-if cost
// under every uniform method of one clustered structure against a per-column
// design, all physically materialized.
func MixedVsUniform(sc ExperimentScale) ([]DesignCost, error) {
	return experiments.MixedVsUniform(sc)
}

// MeasuredScenarios builds the TPC-H/Sales/update-mix execution scenarios at
// the given experiment scale.
func MeasuredScenarios(sc ExperimentScale) []MeasuredScenario {
	return experiments.MeasuredScenarios(sc)
}

// MeasuredExecution runs a workload through the segment-backed store and the
// plain-row oracle on twin databases, recording estimated and counted page
// reads per statement.
func MeasuredExecution(mkdb func() *Database, wl *Workload, defs []*IndexDef) ([]MeasuredExec, error) {
	return experiments.MeasuredExecution(mkdb, wl, defs)
}

// ---------------------------------------------------------------------------
// Experiments

// ExperimentScale sizes experiment runs.
type ExperimentScale = experiments.Scale

// DefaultExperimentScale is the README-documented full scale.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// QuickExperimentScale is the reduced smoke-test scale.
func QuickExperimentScale() ExperimentScale { return experiments.QuickScale() }

// ExperimentIDs lists the reproducible tables/figures.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure, writing a text report.
func RunExperiment(id string, sc ExperimentScale, w io.Writer) error {
	return experiments.Run(id, sc, w)
}

// RunAllExperiments regenerates every table and figure in paper order.
func RunAllExperiments(sc ExperimentScale, w io.Writer) error {
	return experiments.RunAll(sc, w)
}
